/**
 * @file
 * Harness tests: the experiment runner must be deterministic and
 * thread-count independent; the aggregation must implement the
 * paper's SPEC-mean method; trend fits must be exact on lines.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/reporting.hh"

namespace
{

sb::RunSpec
quickSpec(const std::string &bench, sb::Scheme scheme)
{
    sb::RunSpec s;
    s.core = sb::CoreConfig::medium();
    sb::SchemeConfig scfg;
    scfg.scheme = scheme;
    s.scheme = scfg;
    s.workload = bench;
    s.warmupInsts = 5000;
    s.measureInsts = 15000;
    return s;
}

TEST(Runner, SingleRunIsDeterministic)
{
    const auto a =
        sb::ExperimentRunner::runOne(quickSpec("557.xz",
                                               sb::Scheme::Baseline));
    const auto b =
        sb::ExperimentRunner::runOne(quickSpec("557.xz",
                                               sb::Scheme::Baseline));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(Runner, ParallelMatchesSerial)
{
    std::vector<sb::RunSpec> specs;
    for (const char *b : {"557.xz", "541.leela", "503.bwaves"})
        specs.push_back(quickSpec(b, sb::Scheme::SttIssue));

    const sb::ExperimentRunner serial(1);
    const sb::ExperimentRunner parallel(8);
    const auto rs = serial.runAll(specs);
    const auto rp = parallel.runAll(specs);
    ASSERT_EQ(rs.size(), rp.size());
    for (std::size_t i = 0; i < rs.size(); ++i) {
        EXPECT_EQ(rs[i].cycles, rp[i].cycles) << i;
        EXPECT_EQ(rs[i].workload, rp[i].workload) << i;
    }
}

TEST(Runner, MeasurementWindowExcludesWarmup)
{
    auto spec = quickSpec("503.bwaves", sb::Scheme::Baseline);
    const auto out = sb::ExperimentRunner::runOne(spec);
    EXPECT_NEAR(static_cast<double>(out.instructions),
                static_cast<double>(spec.measureInsts),
                spec.measureInsts * 0.01);
    EXPECT_EQ(out.stat("committed_insts"), out.instructions);
}

TEST(Aggregate, SpecMeanIsRatioOfMeans)
{
    // Paper Sec. 8.1 / [11]: mean cycles and mean instructions are
    // averaged separately; the suite IPC is their ratio.
    sb::RunOutcome a;
    a.workload = "x";
    a.coreName = "m";
    a.cycles = 100;
    a.instructions = 100; // IPC 1.0
    sb::RunOutcome b = a;
    b.workload = "y";
    b.cycles = 300;
    b.instructions = 100; // IPC 0.33
    const auto agg = sb::aggregate({a, b});
    EXPECT_NEAR(agg.meanIpc, 200.0 / 400.0, 1e-12);
    EXPECT_EQ(agg.perBench.size(), 2u);
}

TEST(Aggregate, EmptyInputYieldsZeroedAggregate)
{
    const auto agg = sb::aggregate({});
    EXPECT_EQ(agg.meanIpc, 0.0);
    EXPECT_TRUE(agg.perBench.empty());
    EXPECT_TRUE(agg.coreName.empty());
    EXPECT_EQ(agg.scheme, sb::Scheme::Baseline);
}

TEST(Aggregate, FilterOnUnknownCellIsEmptyAndAggregatable)
{
    sb::RunOutcome a;
    a.coreName = "m";
    a.scheme = sb::Scheme::Nda;
    a.cycles = 10;
    a.instructions = 5;

    const auto by_core = sb::filter({a}, "no-such-core",
                                    sb::Scheme::Nda);
    EXPECT_TRUE(by_core.empty());
    const auto by_scheme = sb::filter({a}, "m", sb::Scheme::SttIssue);
    EXPECT_TRUE(by_scheme.empty());

    // The filter -> aggregate pipeline is total: a miss aggregates to
    // the zeroed SuiteAggregate instead of dividing by zero.
    const auto agg = sb::aggregate(by_core);
    EXPECT_EQ(agg.meanIpc, 0.0);
    EXPECT_TRUE(agg.perBench.empty());
}

TEST(Aggregate, FilterSelectsMatchingCells)
{
    sb::RunOutcome a;
    a.coreName = "m";
    a.scheme = sb::Scheme::Nda;
    a.cycles = 1;
    a.instructions = 1;
    sb::RunOutcome b = a;
    b.coreName = "s";
    const auto got = sb::filter({a, b}, "m", sb::Scheme::Nda);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].coreName, "m");
}

TEST(Fit, ExactOnALine)
{
    const auto fit = sb::fitLine({1, 2, 3, 4}, {3, 5, 7, 9});
    EXPECT_NEAR(fit.slope, 2.0, 1e-9);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
    EXPECT_NEAR(fit.at(10), 21.0, 1e-9);
}

TEST(Fit, HalfSlopeProjection)
{
    // Paper Table 3: extrapolate from the last point at half slope.
    const auto fit = sb::fitLine({1, 2}, {1.0, 0.8});
    EXPECT_NEAR(fit.atHalfSlope(4, 2, 0.8), 0.8 - 0.1 * 2, 1e-9);
}

TEST(SuiteSpecs, CrossProductLayout)
{
    sb::SchemeConfig base;
    sb::SchemeConfig nda;
    nda.scheme = sb::Scheme::Nda;
    const auto specs = sb::suiteSpecs(
        {sb::CoreConfig::small(), sb::CoreConfig::mega()}, {base, nda});
    EXPECT_EQ(specs.size(), 2u * 2u * 22u);
    EXPECT_EQ(specs.front().core.name, "small");
    EXPECT_EQ(specs.back().core.name, "mega");
}

TEST(Bar, ScalesAndClamps)
{
    EXPECT_EQ(sb::bar(1.0, 10).size(), 10u);
    EXPECT_EQ(sb::bar(0.5, 10).size(), 5u);
    EXPECT_LE(sb::bar(5.0, 10).size(), 13u); // Clamped.
    EXPECT_EQ(sb::bar(0.0, 10).size(), 0u);
}

} // anonymous namespace
