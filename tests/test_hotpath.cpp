/**
 * @file
 * Unit tests for the cycle engine's hot-path machinery: the indexed
 * issue queue's invariants, the generation-tagged instruction slab,
 * the per-PC decode cache, the timing-wheel event queue, and the
 * histogram-aware stats reset.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hh"
#include "core/decode_cache.hh"
#include "core/inst_slab.hh"
#include "core/issue_queue.hh"
#include "core/timing_wheel.hh"
#include "isa/program.hh"

namespace
{

sb::InstHandle
makeAdd(sb::InstSlab &slab, sb::SeqNum seq, sb::PhysReg src1,
        sb::PhysReg src2)
{
    const sb::InstHandle h = slab.alloc();
    sb::DynInst &inst = slab.get(h);
    inst = sb::DynInst{};
    inst.seq = seq;
    inst.uop.op = sb::Op::Add;
    inst.uop.dst = 1;
    inst.uop.src1 = 2;
    inst.uop.src2 = 3;
    inst.pdst = 40;
    inst.psrc1 = src1;
    inst.psrc2 = src2;
    return h;
}

std::vector<sb::SeqNum>
seqs(sb::IssueQueue &iq)
{
    std::vector<sb::SeqNum> out;
    for (sb::IqEntry *e : iq.inOrder())
        out.push_back(e->seq);
    return out;
}

// --- IssueQueue invariants -------------------------------------------

TEST(IssueQueueIndexed, WakeupViaConsumerListsSetsOnlyMatchingSources)
{
    sb::InstSlab slab(16);
    sb::IssueQueue iq(8);
    iq.attachSlab(&slab);
    const auto a = makeAdd(slab, 1, 10, 11);
    const auto b = makeAdd(slab, 2, 11, 12);
    iq.insert(a, slab.get(a), false, false);
    iq.insert(b, slab.get(b), false, false);

    iq.wakeup(11);
    auto order = iq.inOrder();
    EXPECT_FALSE(order[0]->src1Ready); // a waits on 10.
    EXPECT_TRUE(order[0]->src2Ready);  // a's 11 woke.
    EXPECT_TRUE(order[1]->src1Ready);  // b's 11 woke.
    EXPECT_FALSE(order[1]->src2Ready); // b waits on 12.
}

TEST(IssueQueueIndexed, WakeupOfUnknownRegisterIsANoop)
{
    sb::InstSlab slab(16);
    sb::IssueQueue iq(4);
    iq.attachSlab(&slab);
    const auto a = makeAdd(slab, 1, 10, 11);
    iq.insert(a, slab.get(a), false, false);
    iq.wakeup(500); // Never registered anywhere.
    EXPECT_FALSE(iq.inOrder()[0]->src1Ready);
    EXPECT_FALSE(iq.inOrder()[0]->src2Ready);
}

TEST(IssueQueueIndexed, StaleConsumerRefsDoNotWakeRecycledSlots)
{
    sb::InstSlab slab(16);
    sb::IssueQueue iq(2);
    iq.attachSlab(&slab);
    const auto a = makeAdd(slab, 1, 5, 5);
    iq.insert(a, slab.get(a), false, false);
    iq.remove(slab.get(a)); // Leaves stale refs for preg 5 behind.

    const auto b = makeAdd(slab, 2, 6, 7); // Reuses a's IQ slot.
    iq.insert(b, slab.get(b), false, false);
    iq.wakeup(5);
    EXPECT_FALSE(iq.inOrder()[0]->src1Ready);
    EXPECT_FALSE(iq.inOrder()[0]->src2Ready);

    iq.wakeup(6);
    EXPECT_TRUE(iq.inOrder()[0]->src1Ready);
}

TEST(IssueQueueIndexed, AgeOrderSurvivesInterleavedRemovals)
{
    sb::InstSlab slab(16);
    sb::IssueQueue iq(8);
    iq.attachSlab(&slab);
    std::vector<sb::InstHandle> insts;
    for (sb::SeqNum s = 1; s <= 6; ++s) {
        insts.push_back(makeAdd(slab, s, 10, 11));
        iq.insert(insts.back(), slab.get(insts.back()), true, true);
    }
    iq.remove(slab.get(insts[2])); // seq 3 (middle).
    iq.remove(slab.get(insts[0])); // seq 1 (head).
    iq.remove(slab.get(insts[5])); // seq 6 (tail).
    EXPECT_EQ(seqs(iq), (std::vector<sb::SeqNum>{2, 4, 5}));

    // Slots freed in the middle get reused; order must still hold.
    const auto late = makeAdd(slab, 7, 10, 11);
    iq.insert(late, slab.get(late), true, true);
    EXPECT_EQ(seqs(iq), (std::vector<sb::SeqNum>{2, 4, 5, 7}));
    EXPECT_GE(slab.get(late).iqSlot, 0);
}

TEST(IssueQueueIndexed, SquashCutsYoungEndAndStaleHandles)
{
    sb::InstSlab slab(16);
    sb::IssueQueue iq(8);
    iq.attachSlab(&slab);
    std::vector<sb::InstHandle> insts;
    for (sb::SeqNum s = 1; s <= 5; ++s) {
        insts.push_back(makeAdd(slab, s, 10, 11));
        iq.insert(insts.back(), slab.get(insts.back()), true, true);
    }
    // seq 2's record died in an earlier flush: its handle is stale.
    slab.free(insts[1]);
    // The young-end records are freed before the sweep, as in the
    // core's squash.
    slab.free(insts[3]);
    slab.free(insts[4]);
    iq.squash(3);
    EXPECT_EQ(seqs(iq), (std::vector<sb::SeqNum>{1, 3}));
    EXPECT_EQ(iq.size(), 2u);
}

TEST(IssueQueueIndexed, InOrderViewIsStableBetweenMutations)
{
    sb::InstSlab slab(16);
    sb::IssueQueue iq(4);
    iq.attachSlab(&slab);
    const auto a = makeAdd(slab, 1, 10, 11);
    iq.insert(a, slab.get(a), false, false);
    const auto &v1 = iq.inOrder();
    const auto &v2 = iq.inOrder();
    EXPECT_EQ(&v1, &v2);
    EXPECT_EQ(v1.size(), 1u);
    // Wakeup mutates ready bits in place; the view needs no rebuild.
    iq.wakeup(10);
    EXPECT_TRUE(iq.inOrder()[0]->src1Ready);
}

TEST(IssueQueueIndexed, FillDrainRefillToCapacity)
{
    sb::InstSlab slab(64);
    sb::IssueQueue iq(3);
    iq.attachSlab(&slab);
    std::vector<sb::InstHandle> live;
    sb::SeqNum next = 1;
    for (int round = 0; round < 4; ++round) {
        while (!iq.full()) {
            live.push_back(makeAdd(slab, next++, 10, 11));
            iq.insert(live.back(), slab.get(live.back()), true, true);
        }
        EXPECT_EQ(iq.size(), 3u);
        for (const auto h : live) {
            iq.remove(slab.get(h));
            slab.free(h);
        }
        live.clear();
        EXPECT_EQ(iq.size(), 0u);
    }
}

// --- Instruction slab ------------------------------------------------

TEST(InstSlab, HandlesAddressTheRecordTheyWereCreatedFor)
{
    sb::InstSlab slab(4);
    const auto a = slab.alloc();
    const auto b = slab.alloc();
    slab.get(a).seq = 1;
    slab.get(b).seq = 2;
    EXPECT_EQ(slab.get(a).seq, 1u);
    EXPECT_EQ(slab.get(b).seq, 2u);
    EXPECT_EQ(slab.liveCount(), 2u);
}

TEST(InstSlab, FreeStalesEveryOutstandingHandle)
{
    sb::InstSlab slab(4);
    const auto h = slab.alloc();
    slab.get(h).seq = 42;
    EXPECT_TRUE(slab.alive(h));
    slab.free(h);
    EXPECT_FALSE(slab.alive(h));
    EXPECT_EQ(slab.tryGet(h), nullptr);
}

TEST(InstSlab, RecycledSlotGetsANewGeneration)
{
    sb::InstSlab slab(1); // Single slot: reuse is guaranteed.
    const auto old = slab.alloc();
    slab.free(old);
    const auto fresh = slab.alloc();
    EXPECT_NE(old, fresh);           // Same index, new generation.
    EXPECT_FALSE(slab.alive(old));   // Old handle stays dead...
    EXPECT_TRUE(slab.alive(fresh));  // ...while the slot lives on.
    EXPECT_EQ(slab.tryGet(old), nullptr);
    EXPECT_EQ(&slab.get(fresh), slab.tryGet(fresh));
}

TEST(InstSlab, TracksHighWaterAndRecycleCounts)
{
    sb::InstSlab slab(8);
    const auto a = slab.alloc();
    const auto b = slab.alloc();
    const auto c = slab.alloc();
    EXPECT_EQ(slab.highWater(), 3u);
    slab.free(a);
    slab.free(b);
    EXPECT_EQ(slab.liveCount(), 1u);
    EXPECT_EQ(slab.highWater(), 3u); // High water never recedes.
    EXPECT_EQ(slab.recycled(), 2u);
    slab.free(c);
    EXPECT_EQ(slab.recycled(), 3u);
}

TEST(InstSlab, InvalidHandleNeverResolves)
{
    sb::InstSlab slab(4);
    EXPECT_FALSE(slab.alive(sb::invalidInstHandle));
    EXPECT_EQ(slab.tryGet(sb::invalidInstHandle), nullptr);
}

// sb_assert is active in every build type, so the generation tag's
// guarantees can be death-tested in release binaries too.
TEST(InstSlabDeath, StaleDereferenceIsCaught)
{
    sb::InstSlab slab(2);
    const auto h = slab.alloc();
    slab.free(h);
    EXPECT_DEATH(slab.get(h), "stale instruction handle");
}

TEST(InstSlabDeath, DoubleFreeIsCaught)
{
    sb::InstSlab slab(2);
    const auto h = slab.alloc();
    slab.free(h);
    EXPECT_DEATH(slab.free(h), "stale or invalid");
}

TEST(InstSlabDeath, OverflowIsCaught)
{
    sb::InstSlab slab(2);
    slab.alloc();
    slab.alloc();
    EXPECT_DEATH(slab.alloc(), "slab overflow");
}

// --- Decode cache ----------------------------------------------------

namespace dc
{

sb::Program
tinyProgram()
{
    sb::ProgramBuilder b;
    b.movi(1, 5);          // 0: Plain
    b.addi(1, 1, -1);      // 1: Plain
    b.bne(1, 0, 1);        // 2: CondBranch (loop to 1)
    b.jmp(5);              // 3: Jmp
    b.nop();               // 4
    b.jr(1);               // 5: JmpReg
    b.halt();              // 6: Halt
    return b.build("tiny");
}

} // namespace dc

TEST(DecodeCache, FirstTouchMissesThenHits)
{
    const sb::Program p = dc::tinyProgram();
    sb::DecodeCache cache;
    cache.attach(p);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);

    const auto &d0 = cache.lookup(0);
    EXPECT_TRUE(d0.valid);
    EXPECT_EQ(cache.misses(), 1u);
    cache.lookup(0);
    cache.lookup(0);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(DecodeCache, ClassifiesFetchKinds)
{
    const sb::Program p = dc::tinyProgram();
    sb::DecodeCache cache;
    cache.attach(p);
    EXPECT_EQ(cache.lookup(0).kind, sb::FetchKind::Plain);
    EXPECT_EQ(cache.lookup(2).kind, sb::FetchKind::CondBranch);
    EXPECT_EQ(cache.lookup(3).kind, sb::FetchKind::Jmp);
    EXPECT_EQ(cache.lookup(5).kind, sb::FetchKind::JmpReg);
    EXPECT_EQ(cache.lookup(6).kind, sb::FetchKind::Halt);
    // Unconditional jumps are statically taken.
    EXPECT_TRUE(cache.lookup(3).tmpl.predTaken);
    EXPECT_TRUE(cache.lookup(5).tmpl.predTaken);
    EXPECT_FALSE(cache.lookup(0).tmpl.predTaken);
}

TEST(DecodeCache, TemplateCarriesIdentityAndDefaults)
{
    const sb::Program p = dc::tinyProgram();
    sb::DecodeCache cache;
    cache.attach(p);
    const auto &d = cache.lookup(1);
    EXPECT_EQ(d.tmpl.pc, 1u);
    EXPECT_EQ(d.tmpl.uop.op, p.code[1].op);
    // Everything dynamic is default: stamping the template is the
    // slab record's reset.
    EXPECT_EQ(d.tmpl.seq, 0u);
    EXPECT_FALSE(d.tmpl.completed);
    EXPECT_FALSE(d.tmpl.squashed);
    EXPECT_EQ(d.tmpl.iqSlot, -1);
}

TEST(DecodeCache, InvalidateForcesRebuild)
{
    const sb::Program p = dc::tinyProgram();
    sb::DecodeCache cache;
    cache.attach(p);
    cache.lookup(0);
    cache.lookup(0);
    EXPECT_EQ(cache.misses(), 1u);

    cache.invalidate(0);
    cache.lookup(0); // Must rebuild.
    EXPECT_EQ(cache.misses(), 2u);

    // Other entries are untouched.
    cache.lookup(1);
    cache.invalidate(0);
    cache.lookup(1);
    EXPECT_EQ(cache.misses(), 3u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(DecodeCache, InvalidateAllDropsEverything)
{
    const sb::Program p = dc::tinyProgram();
    sb::DecodeCache cache;
    cache.attach(p);
    for (std::uint32_t pc = 0; pc < p.code.size(); ++pc)
        cache.lookup(pc);
    const auto misses_before = cache.misses();
    cache.invalidateAll();
    for (std::uint32_t pc = 0; pc < p.code.size(); ++pc)
        cache.lookup(pc);
    EXPECT_EQ(cache.misses(), 2 * misses_before);
}

TEST(DecodeCache, AttachResetsCountersAndResizes)
{
    const sb::Program p = dc::tinyProgram();
    sb::DecodeCache cache;
    cache.attach(p);
    cache.lookup(0);
    cache.lookup(0);

    sb::ProgramBuilder b;
    b.halt();
    const sb::Program q = b.build("one-op");
    cache.attach(q);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.lookup(0).kind, sb::FetchKind::Halt);
}

// --- Timing wheel ----------------------------------------------------

TEST(TimingWheel, DrainsAtExactCycleInFifoOrder)
{
    sb::TimingWheel<int> wheel(64);
    wheel.push(12, 10, 1);
    wheel.push(11, 10, 2);
    wheel.push(12, 10, 3);

    std::vector<int> got;
    auto take = [&](int v) { got.push_back(v); };
    wheel.drainDue(11, take);
    EXPECT_EQ(got, (std::vector<int>{2}));
    got.clear();
    wheel.drainDue(12, take);
    EXPECT_EQ(got, (std::vector<int>{1, 3}));
    EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, PastEventsClampToNextCycle)
{
    // Matches the old priority-queue engine: a same-cycle push is
    // seen by the *next* cycle's drain (this cycle's already ran).
    sb::TimingWheel<int> wheel(64);
    wheel.push(10, 10, 1);
    wheel.push(5, 10, 2);
    std::vector<int> got;
    wheel.drainDue(11, [&](int v) { got.push_back(v); });
    EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(TimingWheel, OverflowBeyondHorizonStillFires)
{
    sb::TimingWheel<int> wheel(16); // Rounds up to 32 buckets.
    EXPECT_EQ(wheel.bucketCount(), 32u);
    wheel.push(1000, 1, 7);
    std::vector<int> got;
    for (sb::Cycle c = 2; c <= 1000; ++c)
        wheel.drainDue(c, [&](int v) { got.push_back(v); });
    EXPECT_EQ(got, (std::vector<int>{7}));
}

TEST(TimingWheel, HandlersMayPushFutureEvents)
{
    sb::TimingWheel<int> wheel(64);
    wheel.push(5, 4, 1);
    std::vector<int> got;
    wheel.drainDue(5, [&](int v) {
        got.push_back(v);
        if (v == 1)
            wheel.push(6, 5, 2);
    });
    wheel.drainDue(6, [&](int v) { got.push_back(v); });
    EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

// --- Stats reset -----------------------------------------------------

TEST(StatGroupReset, ClearsHistogramsAndCounters)
{
    sb::StatGroup g("test");
    g.counter("ctr") += 5;
    sb::Histogram &h = g.histogram("lat", 8, 2);
    h.sample(3);
    h.sample(9);
    ASSERT_EQ(h.count(), 2u);
    ASSERT_EQ(h.total(), 12u);

    g.reset();
    EXPECT_EQ(g.value("ctr"), 0u);
    EXPECT_EQ(h.count(), 0u);   // The warmup-pollution fix.
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (unsigned i = 0; i < h.numBuckets(); ++i)
        EXPECT_EQ(h.bucketCount(i), 0u);
}

} // anonymous namespace
