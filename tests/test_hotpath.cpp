/**
 * @file
 * Unit tests for the cycle engine's hot-path machinery: the indexed
 * issue queue's invariants, the DynInst recycling pool, the
 * timing-wheel event queue, and the histogram-aware stats reset.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hh"
#include "core/dyn_inst_pool.hh"
#include "core/issue_queue.hh"
#include "core/timing_wheel.hh"

namespace
{

sb::DynInstPtr
makeAdd(sb::SeqNum seq, sb::PhysReg src1, sb::PhysReg src2)
{
    auto inst = std::make_shared<sb::DynInst>();
    inst->seq = seq;
    inst->uop.op = sb::Op::Add;
    inst->uop.dst = 1;
    inst->uop.src1 = 2;
    inst->uop.src2 = 3;
    inst->pdst = 40;
    inst->psrc1 = src1;
    inst->psrc2 = src2;
    return inst;
}

std::vector<sb::SeqNum>
seqs(sb::IssueQueue &iq)
{
    std::vector<sb::SeqNum> out;
    for (sb::IqEntry *e : iq.inOrder())
        out.push_back(e->inst->seq);
    return out;
}

// --- IssueQueue invariants -------------------------------------------

TEST(IssueQueueIndexed, WakeupViaConsumerListsSetsOnlyMatchingSources)
{
    sb::IssueQueue iq(8);
    auto a = makeAdd(1, 10, 11);
    auto b = makeAdd(2, 11, 12);
    iq.insert(a, false, false);
    iq.insert(b, false, false);

    iq.wakeup(11);
    auto order = iq.inOrder();
    EXPECT_FALSE(order[0]->src1Ready); // a waits on 10.
    EXPECT_TRUE(order[0]->src2Ready);  // a's 11 woke.
    EXPECT_TRUE(order[1]->src1Ready);  // b's 11 woke.
    EXPECT_FALSE(order[1]->src2Ready); // b waits on 12.
}

TEST(IssueQueueIndexed, WakeupOfUnknownRegisterIsANoop)
{
    sb::IssueQueue iq(4);
    auto a = makeAdd(1, 10, 11);
    iq.insert(a, false, false);
    iq.wakeup(500); // Never registered anywhere.
    EXPECT_FALSE(iq.inOrder()[0]->src1Ready);
    EXPECT_FALSE(iq.inOrder()[0]->src2Ready);
}

TEST(IssueQueueIndexed, StaleConsumerRefsDoNotWakeRecycledSlots)
{
    sb::IssueQueue iq(2);
    auto a = makeAdd(1, 5, 5);
    iq.insert(a, false, false);
    iq.remove(a); // Leaves stale refs for preg 5 behind.

    auto b = makeAdd(2, 6, 7); // Reuses a's slot.
    iq.insert(b, false, false);
    iq.wakeup(5);
    EXPECT_FALSE(iq.inOrder()[0]->src1Ready);
    EXPECT_FALSE(iq.inOrder()[0]->src2Ready);

    iq.wakeup(6);
    EXPECT_TRUE(iq.inOrder()[0]->src1Ready);
}

TEST(IssueQueueIndexed, AgeOrderSurvivesInterleavedRemovals)
{
    sb::IssueQueue iq(8);
    std::vector<sb::DynInstPtr> insts;
    for (sb::SeqNum s = 1; s <= 6; ++s) {
        insts.push_back(makeAdd(s, 10, 11));
        iq.insert(insts.back(), true, true);
    }
    iq.remove(insts[2]); // seq 3 (middle).
    iq.remove(insts[0]); // seq 1 (head).
    iq.remove(insts[5]); // seq 6 (tail).
    EXPECT_EQ(seqs(iq), (std::vector<sb::SeqNum>{2, 4, 5}));

    // Slots freed in the middle get reused; order must still hold.
    auto late = makeAdd(7, 10, 11);
    iq.insert(late, true, true);
    EXPECT_EQ(seqs(iq), (std::vector<sb::SeqNum>{2, 4, 5, 7}));
    EXPECT_EQ(late->iqSlot >= 0, true);
}

TEST(IssueQueueIndexed, SquashCutsYoungEndAndFlaggedEntries)
{
    sb::IssueQueue iq(8);
    std::vector<sb::DynInstPtr> insts;
    for (sb::SeqNum s = 1; s <= 5; ++s) {
        insts.push_back(makeAdd(s, 10, 11));
        iq.insert(insts.back(), true, true);
    }
    insts[1]->squashed = true; // seq 2: flagged by an earlier flush.
    iq.squash(3);
    EXPECT_EQ(seqs(iq), (std::vector<sb::SeqNum>{1, 3}));
    EXPECT_FALSE(insts[4]->inIq);
    EXPECT_EQ(insts[4]->iqSlot, -1);
    EXPECT_EQ(iq.size(), 2u);
}

TEST(IssueQueueIndexed, InOrderViewIsStableBetweenMutations)
{
    sb::IssueQueue iq(4);
    auto a = makeAdd(1, 10, 11);
    iq.insert(a, false, false);
    const auto &v1 = iq.inOrder();
    const auto &v2 = iq.inOrder();
    EXPECT_EQ(&v1, &v2);
    EXPECT_EQ(v1.size(), 1u);
    // Wakeup mutates ready bits in place; the view needs no rebuild.
    iq.wakeup(10);
    EXPECT_TRUE(iq.inOrder()[0]->src1Ready);
}

TEST(IssueQueueIndexed, FillDrainRefillToCapacity)
{
    sb::IssueQueue iq(3);
    std::vector<sb::DynInstPtr> live;
    sb::SeqNum next = 1;
    for (int round = 0; round < 4; ++round) {
        while (!iq.full()) {
            live.push_back(makeAdd(next++, 10, 11));
            iq.insert(live.back(), true, true);
        }
        EXPECT_EQ(iq.size(), 3u);
        for (auto &inst : live)
            iq.remove(inst);
        live.clear();
        EXPECT_EQ(iq.size(), 0u);
    }
}

// --- DynInst pool ----------------------------------------------------

TEST(DynInstPool, RecyclesStorageAfterLastReferenceDrops)
{
    sb::DynInstPool pool;
    sb::DynInst *raw;
    {
        sb::DynInstPtr inst = pool.acquire();
        raw = inst.get();
        inst->seq = 42;
        inst->squashed = true;
        inst->effAddr = 0xdeadbeef;
    }
    // Same storage comes back, fully reset to default state.
    sb::DynInstPtr again = pool.acquire();
    EXPECT_EQ(again.get(), raw);
    EXPECT_EQ(again->seq, 0u);
    EXPECT_FALSE(again->squashed);
    EXPECT_EQ(again->effAddr, 0u);
    EXPECT_EQ(again->iqSlot, -1);
}

TEST(DynInstPool, NoReuseWhileReferenced)
{
    sb::DynInstPool pool;
    sb::DynInstPtr a = pool.acquire();
    sb::DynInstPtr extra_ref = a;
    sb::DynInstPtr b = pool.acquire();
    EXPECT_NE(a.get(), b.get());
    a.reset();
    // Still referenced through extra_ref: must not be handed out.
    sb::DynInstPtr c = pool.acquire();
    EXPECT_NE(c.get(), extra_ref.get());
}

TEST(DynInstPool, SteadyStateStopsGrowingSlabs)
{
    sb::DynInstPool pool;
    for (int i = 0; i < 10000; ++i)
        pool.acquire(); // Dropped immediately: recycled every time.
    EXPECT_EQ(pool.totalBlocks(), 256u); // One slab forever.
}

TEST(DynInstPool, BlocksOutliveThePool)
{
    sb::DynInstPtr survivor;
    {
        sb::DynInstPool pool;
        survivor = pool.acquire();
        survivor->seq = 7;
    }
    // The arena is kept alive by the allocation's control block.
    EXPECT_EQ(survivor->seq, 7u);
}

// --- Timing wheel ----------------------------------------------------

TEST(TimingWheel, DrainsAtExactCycleInFifoOrder)
{
    sb::TimingWheel<int> wheel(64);
    wheel.push(12, 10, 1);
    wheel.push(11, 10, 2);
    wheel.push(12, 10, 3);

    std::vector<int> got;
    auto take = [&](int v) { got.push_back(v); };
    wheel.drainDue(11, take);
    EXPECT_EQ(got, (std::vector<int>{2}));
    got.clear();
    wheel.drainDue(12, take);
    EXPECT_EQ(got, (std::vector<int>{1, 3}));
    EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, PastEventsClampToNextCycle)
{
    // Matches the old priority-queue engine: a same-cycle push is
    // seen by the *next* cycle's drain (this cycle's already ran).
    sb::TimingWheel<int> wheel(64);
    wheel.push(10, 10, 1);
    wheel.push(5, 10, 2);
    std::vector<int> got;
    wheel.drainDue(11, [&](int v) { got.push_back(v); });
    EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(TimingWheel, OverflowBeyondHorizonStillFires)
{
    sb::TimingWheel<int> wheel(16); // Rounds up to 32 buckets.
    EXPECT_EQ(wheel.bucketCount(), 32u);
    wheel.push(1000, 1, 7);
    std::vector<int> got;
    for (sb::Cycle c = 2; c <= 1000; ++c)
        wheel.drainDue(c, [&](int v) { got.push_back(v); });
    EXPECT_EQ(got, (std::vector<int>{7}));
}

TEST(TimingWheel, HandlersMayPushFutureEvents)
{
    sb::TimingWheel<int> wheel(64);
    wheel.push(5, 4, 1);
    std::vector<int> got;
    wheel.drainDue(5, [&](int v) {
        got.push_back(v);
        if (v == 1)
            wheel.push(6, 5, 2);
    });
    wheel.drainDue(6, [&](int v) { got.push_back(v); });
    EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

// --- Stats reset -----------------------------------------------------

TEST(StatGroupReset, ClearsHistogramsAndCounters)
{
    sb::StatGroup g("test");
    g.counter("ctr") += 5;
    sb::Histogram &h = g.histogram("lat", 8, 2);
    h.sample(3);
    h.sample(9);
    ASSERT_EQ(h.count(), 2u);
    ASSERT_EQ(h.total(), 12u);

    g.reset();
    EXPECT_EQ(g.value("ctr"), 0u);
    EXPECT_EQ(h.count(), 0u);   // The warmup-pollution fix.
    EXPECT_EQ(h.total(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (unsigned i = 0; i < h.numBuckets(); ++i)
        EXPECT_EQ(h.bucketCount(i), 0u);
}

} // anonymous namespace
