/**
 * @file
 * Contract shadow engine tests: a deliberately leaky scheme is flagged
 * at the exact cycle/seq/pc of its first out-of-contract transmit
 * (cross-checked against the pipeline trace), the unprotected baseline
 * violates constant-time where the declared schemes do not, the
 * engine is timing-invisible, the conformance generator emits
 * secret-labelled buffers, and SB_INVARIANTS=1 forces the checks on
 * whatever the build default.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "core/core.hh"
#include "harness/attack.hh"
#include "harness/conformance.hh"
#include "harness/experiment.hh"
#include "harness/verify.hh"
#include "isa/generator.hh"
#include "secure/factory.hh"

namespace
{

/** Declares the STT contract but implements nothing. */
class LeakyDummyScheme : public sb::SecureScheme
{
  public:
    const char *name() const override { return "LeakyDummy"; }
    sb::SecurityContract contract() const override
    {
        return sb::SecurityContract::transmitterSafe();
    }
};

sb::GadgetProgram
v1Gadget()
{
    return sb::buildGadgetProgram(sb::GadgetKind::SpectreV1,
                                  sb::verifySecretA,
                                  sb::verifyGadgetSeed);
}

TEST(ContractShadow, PinpointsTheLeakySchemesFirstViolation)
{
    const auto gadget = v1Gadget();
    ASSERT_GT(gadget.transmitPc, 0u);

    const auto res = sb::runGadgetAttack(
        gadget, sb::CoreConfig::mega(), sb::SchemeConfig{},
        std::make_unique<LeakyDummyScheme>(), sb::verifySecretA);

    // The do-nothing scheme leaks (differential verdict) and the
    // shadow engine pinpoints the transmit site of the gadget.
    EXPECT_TRUE(res.leaked);
    EXPECT_GT(res.sandboxViolations, 0u);
    ASSERT_TRUE(res.firstSandboxViolation.valid());
    EXPECT_EQ(res.firstSandboxViolation.pc, gadget.transmitPc);
    ASSERT_TRUE(res.firstCtViolation.valid());
    EXPECT_EQ(res.firstCtViolation.pc, gadget.transmitPc);

    // Folded the way the battery folds, the shadow verdict agrees
    // with the differential one: the cell fails its declared contract.
    sb::VerifyCell cell;
    cell.gadget = "spectre-v1";
    cell.contract = LeakyDummyScheme().contract();
    cell.judgedPolicy = cell.contract.policy;
    cell.leaked = res.leaked;
    cell.armed = res.leaked;
    cell.transmitViolations = res.transmitViolations;
    cell.sandboxViolations = res.sandboxViolations;
    cell.firstSandboxViolation = res.firstSandboxViolation;
    EXPECT_FALSE(cell.pass());
}

TEST(ContractShadow, FirstViolationMatchesAnExecuteEventExactly)
{
    // Cross-check the pinpointed (cycle, seq) against the pipeline
    // trace: the record must name a real execute event of the
    // transmit site, at exactly that cycle.
    const auto gadget = v1Gadget();

    sb::SchemeConfig scfg;
    sb::Core core(sb::CoreConfig::mega(), scfg,
                  std::make_unique<LeakyDummyScheme>(), gadget.program);
    core.setContractShadowEnabled(true);
    std::vector<std::pair<sb::Cycle, sb::SeqNum>> transmits;
    core.setTraceHook([&](const char *event, const sb::DynInst &inst,
                          sb::Cycle at) {
        if (std::string_view(event) == "execute"
            && inst.pc == gadget.transmitPc)
            transmits.emplace_back(at, inst.seq);
    });
    const auto r = core.run(100'000'000, 10'000'000);
    EXPECT_TRUE(r.halted);

    const sb::ContractViolation first =
        core.contractShadow().firstSandboxViolation();
    ASSERT_TRUE(first.valid());
    EXPECT_EQ(first.pc, gadget.transmitPc);
    bool matched = false;
    for (const auto &[at, seq] : transmits)
        matched = matched || (at == first.cycle && seq == first.seq);
    EXPECT_TRUE(matched)
        << "first violation (cycle " << first.cycle << ", seq "
        << first.seq << ") is not an execute event of pc "
        << gadget.transmitPc;
}

TEST(ContractShadow, BaselineViolatesConstantTimeDeclaredSchemesDoNot)
{
    const auto gadget = v1Gadget();
    const auto run = [](sb::Scheme s) {
        sb::SchemeConfig scfg;
        scfg.scheme = s;
        return sb::runGadget(sb::GadgetKind::SpectreV1,
                             sb::CoreConfig::mega(), scfg,
                             sb::verifySecretA, sb::verifyGadgetSeed);
    };

    const auto base = run(sb::Scheme::Baseline);
    EXPECT_GT(base.ctViolations, 0u);
    ASSERT_TRUE(base.firstCtViolation.valid());
    EXPECT_EQ(base.firstCtViolation.pc, gadget.transmitPc);

    // DoM (sandboxing) and DelayAll (consume-safe) both keep the
    // secret away from every executed transmitter on this gadget, so
    // even the strictest policy holds.
    for (sb::Scheme s :
         {sb::Scheme::DelayOnMiss, sb::Scheme::DelayAll}) {
        const auto res = run(s);
        EXPECT_EQ(res.sandboxViolations, 0u) << sb::schemeName(s);
        EXPECT_EQ(res.ctViolations, 0u) << sb::schemeName(s);
        EXPECT_FALSE(res.firstCtViolation.valid()) << sb::schemeName(s);
    }
}

TEST(ContractShadow, EngineIsTimingInvisible)
{
    // The shadow engine is a pure observer: cycle-identical runs with
    // the checks on and off.
    const auto gadget = v1Gadget();
    const auto run = [&](bool enable) {
        sb::SchemeConfig scfg;
        sb::Core core(sb::CoreConfig::mega(), scfg,
                      sb::makeScheme(scfg), gadget.program);
        core.setContractShadowEnabled(enable);
        const auto r = core.run(100'000'000, 10'000'000);
        EXPECT_TRUE(r.halted);
        return core.now();
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(ContractShadow, GeneratedProgramsCarrySecretRegions)
{
    sb::GeneratorParams params;
    params.seed = 7;
    const sb::Program p = sb::generateProgram(params);
    ASSERT_FALSE(p.secretRegions.empty());
    EXPECT_EQ(p.secretRegions[0].base,
              sb::generatorMemBase + params.memBytes / 2);
    EXPECT_EQ(p.secretRegions[0].bytes, params.memBytes / 2);
}

TEST(ContractShadow, FuzzCellSeesSecretsOnTheBaseline)
{
    // The pinned contract_check seed: the unprotected baseline must
    // pull secret-labelled words into transmitters.
    sb::RunSpec spec;
    spec.workload =
        sb::fuzzWorkloadName(sb::OpMixProfile::Mixed, 0xC0FFEE, 32);
    spec.maxCycles = 4'000'000;
    const auto out = sb::ExperimentRunner::runOne(spec);
    EXPECT_GT(out.stat("fuzz_ct_viol"), 0u);
}

TEST(ContractShadow, SbInvariantsForcesTheChecksOn)
{
    const auto gadget = v1Gadget();
    const auto makeCore = [&]() {
        sb::SchemeConfig scfg;
        return std::make_unique<sb::Core>(sb::CoreConfig::mega(), scfg,
                                          sb::makeScheme(scfg),
                                          gadget.program);
    };
    ::setenv("SB_INVARIANTS", "1", 1);
    EXPECT_TRUE(makeCore()->contractShadow().on());
    ::setenv("SB_INVARIANTS", "0", 1);
    EXPECT_FALSE(makeCore()->contractShadow().on());
    ::unsetenv("SB_INVARIANTS");
}

} // anonymous namespace
