/**
 * @file
 * Determinism / timing-parity regression.
 *
 * The cycle engine's hot paths are performance-optimized (cached stat
 * handles, a DynInst recycling pool, the indexed issue queue, and
 * timing-wheel event queues), and every such optimization must be
 * timing-neutral: it may change how fast the simulator runs, never
 * what it simulates. These goldens pin the exact cycle and
 * committed-instruction counts per scheme for fixed RunSpecs; they
 * were captured from the pre-optimization seed engine and any future
 * perf work has to keep reproducing them bit-identically.
 *
 * If a change is *meant* to alter timing semantics (a modelling fix,
 * a new microarchitectural feature), recapture the goldens in the
 * same change and say so in the commit message.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace
{

struct Golden
{
    sb::Scheme scheme;
    const char *workload;
    std::uint64_t cycles;
    std::uint64_t instructions;
};

// Captured on the seed engine (mega core, warmup 10000, measure
// 50000) and reproduced bit-identically by the optimized engine.
const Golden goldens[] = {
    {sb::Scheme::Baseline, "505.mcf", 207956ull, 50002ull},
    {sb::Scheme::Baseline, "541.leela", 54131ull, 50002ull},
    {sb::Scheme::Baseline, "519.lbm", 33330ull, 50000ull},
    {sb::Scheme::SttRename, "505.mcf", 227054ull, 50002ull},
    {sb::Scheme::SttRename, "541.leela", 55254ull, 50002ull},
    {sb::Scheme::SttRename, "519.lbm", 33330ull, 50000ull},
    {sb::Scheme::SttIssue, "505.mcf", 225993ull, 50002ull},
    {sb::Scheme::SttIssue, "541.leela", 55278ull, 50002ull},
    {sb::Scheme::SttIssue, "519.lbm", 33330ull, 50000ull},
    {sb::Scheme::Nda, "505.mcf", 229176ull, 50002ull},
    {sb::Scheme::Nda, "541.leela", 55865ull, 50000ull},
    {sb::Scheme::Nda, "519.lbm", 33330ull, 50000ull},
    // Captured at the introduction of the delay schemes (same window);
    // 519.lbm matching the baseline exactly is the expected signature
    // (a streaming kernel with no long shadows delays nothing).
    {sb::Scheme::DelayOnMiss, "505.mcf", 224932ull, 50002ull},
    {sb::Scheme::DelayOnMiss, "541.leela", 294305ull, 50000ull},
    {sb::Scheme::DelayOnMiss, "519.lbm", 33330ull, 50000ull},
    {sb::Scheme::DelayAll, "505.mcf", 230237ull, 50002ull},
    {sb::Scheme::DelayAll, "541.leela", 299681ull, 50000ull},
    {sb::Scheme::DelayAll, "519.lbm", 33330ull, 50000ull},
};

TEST(TimingParity, GoldenCycleAndInstructionCounts)
{
    for (const Golden &g : goldens) {
        sb::RunSpec spec;
        spec.core = sb::CoreConfig::mega();
        spec.scheme.scheme = g.scheme;
        spec.workload = g.workload;
        spec.warmupInsts = 10000;
        spec.measureInsts = 50000;

        const sb::RunOutcome out = sb::ExperimentRunner::runOne(spec);
        EXPECT_EQ(out.cycles, g.cycles)
            << sb::schemeName(g.scheme) << " on " << g.workload;
        EXPECT_EQ(out.instructions, g.instructions)
            << sb::schemeName(g.scheme) << " on " << g.workload;
    }
}

TEST(TimingParity, RepeatedRunsAreDeterministic)
{
    sb::RunSpec spec;
    spec.core = sb::CoreConfig::mega();
    spec.scheme.scheme = sb::Scheme::SttRename;
    spec.workload = "505.mcf";
    spec.warmupInsts = 5000;
    spec.measureInsts = 20000;

    const sb::RunOutcome a = sb::ExperimentRunner::runOne(spec);
    const sb::RunOutcome b = sb::ExperimentRunner::runOne(spec);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stats, b.stats);
}

} // anonymous namespace
