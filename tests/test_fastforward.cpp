/**
 * @file
 * Fast-forward warmup validation.
 *
 * CoreConfig::warmupInsts switches the first run() into a functional
 * warmup: instructions execute architecturally (registers, working
 * memory, caches, branch predictor, BTB) without occupying the
 * pipeline, then the detailed window starts from warm state. These
 * tests pin the contract: architectural state is exactly what a
 * detailed run would have produced, the detailed measurement window
 * preserves the schemes' relative performance, and the config's
 * canonical key only changes when fast-forward is actually enabled.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "core/core.hh"
#include "isa/program.hh"
#include "secure/factory.hh"
#include "trace/spec_suite.hh"

namespace
{

constexpr sb::Scheme allSchemes[] = {
    sb::Scheme::Baseline,    sb::Scheme::SttRename,
    sb::Scheme::SttIssue,    sb::Scheme::Nda,
    sb::Scheme::NdaStrict,   sb::Scheme::DelayOnMiss,
    sb::Scheme::DelayAll,
};

std::unique_ptr<sb::Core>
makeCore(const sb::Program &p, sb::Scheme scheme, sb::CoreConfig cfg)
{
    sb::SchemeConfig scfg;
    scfg.scheme = scheme;
    return std::make_unique<sb::Core>(cfg, scfg, sb::makeScheme(scfg),
                                      p);
}

/** Mixed ALU/memory/branch kernel with stores the image must absorb. */
sb::Program
mixedKernel(unsigned iters)
{
    sb::ProgramBuilder b;
    b.movi(1, 0);              // i
    b.movi(2, iters);
    b.movi(3, 0);              // accumulator
    b.movi(6, 2);
    const auto loop = b.here();
    b.mul(4, 1, 6);            // 2i
    b.add(3, 3, 4);
    b.shl(5, 1, 3);            // byte offset i*8
    b.store(5, 3, 4096);       // mem[4096 + 8i] = acc
    b.load(7, 5, 4096);        // Read it back.
    b.add(3, 3, 7);
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    b.halt();
    return b.build("mixed-kernel");
}

TEST(FastForward, ArchStateMatchesDetailedRun)
{
    const sb::Program p = mixedKernel(300);

    auto detailed =
        makeCore(p, sb::Scheme::Baseline, sb::CoreConfig::mega());
    ASSERT_TRUE(detailed->run(5'000'000, 5'000'000).halted);

    sb::CoreConfig ffwd_cfg = sb::CoreConfig::mega();
    ffwd_cfg.warmupInsts = 10'000'000; // Covers the whole program.
    auto ffwd = makeCore(p, sb::Scheme::Baseline, ffwd_cfg);
    const auto r = ffwd->run(5'000'000, 5'000'000);
    ASSERT_TRUE(r.halted);

    // The warmup stops *at* the halt; the detailed window commits it.
    EXPECT_GT(ffwd->fastForwardedInstructions(), 0u);
    EXPECT_EQ(ffwd->committedInstructions(), 1u);

    for (sb::ArchReg reg = 1; reg <= 7; ++reg)
        EXPECT_EQ(ffwd->readArchReg(reg), detailed->readArchReg(reg))
            << "arch reg " << unsigned(reg);
    EXPECT_EQ(ffwd->memoryImage().fingerprint(),
              detailed->memoryImage().fingerprint());
}

TEST(FastForward, WarmupWindowSplitMatchesFullFunctionalResult)
{
    const sb::Program p = mixedKernel(300);

    auto detailed =
        makeCore(p, sb::Scheme::Baseline, sb::CoreConfig::mega());
    ASSERT_TRUE(detailed->run(5'000'000, 5'000'000).halted);

    // Fast-forward only part of the program: the detailed window must
    // pick up mid-loop and land on the same architectural state.
    sb::CoreConfig ffwd_cfg = sb::CoreConfig::mega();
    ffwd_cfg.warmupInsts = 1000;
    auto ffwd = makeCore(p, sb::Scheme::Baseline, ffwd_cfg);
    ASSERT_TRUE(ffwd->run(5'000'000, 5'000'000).halted);

    EXPECT_EQ(ffwd->fastForwardedInstructions(), 1000u);
    EXPECT_GT(ffwd->committedInstructions(), 0u);
    for (sb::ArchReg reg = 1; reg <= 7; ++reg)
        EXPECT_EQ(ffwd->readArchReg(reg), detailed->readArchReg(reg))
            << "arch reg " << unsigned(reg);
    EXPECT_EQ(ffwd->memoryImage().fingerprint(),
              detailed->memoryImage().fingerprint());
}

TEST(FastForward, MeasurementWindowPreservesSchemeOrdering)
{
    const sb::Workload w = sb::SpecSuite::make("505.mcf");
    constexpr std::uint64_t warmup = 20'000;
    constexpr std::uint64_t measure = 50'000;

    std::vector<double> detailed_ipc;
    std::vector<double> ffwd_ipc;
    for (const sb::Scheme scheme : allSchemes) {
        auto core =
            makeCore(w.program, scheme, sb::CoreConfig::mega());
        core->run(warmup, 100'000'000);
        const sb::Cycle c0 = core->now();
        const std::uint64_t i0 = core->committedInstructions();
        core->run(measure, 100'000'000);
        detailed_ipc.push_back(
            double(core->committedInstructions() - i0)
            / double(core->now() - c0));

        sb::CoreConfig cfg = sb::CoreConfig::mega();
        cfg.warmupInsts = warmup;
        auto fcore = makeCore(w.program, scheme, cfg);
        fcore->run(measure, 100'000'000);
        ASSERT_GT(fcore->now(), 0u);
        EXPECT_EQ(fcore->fastForwardedInstructions(), warmup);
        ffwd_ipc.push_back(double(fcore->committedInstructions())
                           / double(fcore->now()));
    }

    // Fast-forwarded state is warm but not cycle-identical (the
    // pipeline starts empty), so compare what the mode is for:
    // whenever the detailed run clearly separates two schemes, the
    // fast-forwarded run must rank them the same way.
    for (std::size_t a = 0; a < detailed_ipc.size(); ++a) {
        for (std::size_t b = 0; b < detailed_ipc.size(); ++b) {
            if (detailed_ipc[a] > detailed_ipc[b] * 1.03) {
                EXPECT_GT(ffwd_ipc[a], ffwd_ipc[b])
                    << sb::schemeName(allSchemes[a]) << " vs "
                    << sb::schemeName(allSchemes[b]);
            }
        }
    }
}

TEST(FastForward, CanonicalKeyOnlyChangesWhenEnabled)
{
    sb::CoreConfig off = sb::CoreConfig::mega();
    const std::string base = off.canonical();
    EXPECT_EQ(base.find(";ffwd="), std::string::npos)
        << "default key must stay byte-identical to pre-fast-forward "
           "releases (cache keys depend on it)";

    sb::CoreConfig on = sb::CoreConfig::mega();
    on.warmupInsts = 12345;
    const std::string keyed = on.canonical();
    EXPECT_NE(keyed.find(";ffwd=12345"), std::string::npos);
    EXPECT_NE(keyed, base);
}

} // anonymous namespace
