/**
 * @file
 * Multi-tenant tier tests: the set-associative BTB, predictor
 * flushing, context-switch register banking and squash, the
 * server-mix workload/harness, and the cross-domain gadget closure
 * matrix under the switch policies.
 */

#include <gtest/gtest.h>

#include "branch/btb.hh"
#include "branch/tage.hh"
#include "core/core.hh"
#include "harness/attack.hh"
#include "harness/tenant.hh"
#include "harness/verify.hh"
#include "isa/program.hh"
#include "isa/transform.hh"
#include "secure/factory.hh"
#include "trace/gadgets.hh"
#include "trace/server_mix.hh"

namespace
{

// --- BTB geometry -------------------------------------------------------

TEST(Btb, MissPredictsFallThroughAndHitPredictsTarget)
{
    sb::BranchTargetBuffer btb(16, 2);
    EXPECT_FALSE(btb.hit(5));
    EXPECT_EQ(btb.predict(5), 6u);
    btb.train(5, 100);
    EXPECT_TRUE(btb.hit(5));
    EXPECT_EQ(btb.predict(5), 100u);
    btb.train(5, 200); // Retrain in place, no second entry.
    EXPECT_EQ(btb.predict(5), 200u);
    EXPECT_EQ(btb.size(), 1u);
}

TEST(Btb, LruEvictionWithinASet)
{
    // 4 sets x 2 ways; pcs 1, 5, 9 all map to set 1.
    sb::BranchTargetBuffer btb(4, 2);
    btb.train(1, 100);
    btb.train(5, 200);
    btb.train(1, 100); // Touch: 5 becomes the LRU way.
    btb.train(9, 300); // Evicts 5.
    EXPECT_TRUE(btb.hit(1));
    EXPECT_TRUE(btb.hit(9));
    EXPECT_FALSE(btb.hit(5));
    EXPECT_EQ(btb.predict(5), 6u);
    EXPECT_EQ(btb.size(), 2u);
}

TEST(Btb, FlushInvalidatesEverything)
{
    sb::BranchTargetBuffer btb(8, 2);
    for (std::uint32_t pc = 0; pc < 16; ++pc)
        btb.train(pc, pc + 50);
    EXPECT_EQ(btb.size(), 16u);
    btb.flush();
    EXPECT_EQ(btb.size(), 0u);
    for (std::uint32_t pc = 0; pc < 16; ++pc)
        EXPECT_EQ(btb.predict(pc), pc + 1);
}

// --- TAGE flush ---------------------------------------------------------

TEST(Tage, FlushRestoresFreshPredictorState)
{
    sb::TagePredictor fresh(8);
    sb::TagePredictor trained(8);
    // Bias a set of branches hard-taken with varied histories.
    for (int round = 0; round < 200; ++round) {
        for (std::uint64_t pc = 0; pc < 8; ++pc)
            trained.update(pc * 37 + 5, round * 0x9E37, true);
    }
    bool diverged = false;
    for (std::uint64_t pc = 0; pc < 8; ++pc) {
        diverged |= trained.predict(pc * 37 + 5, 0)
                    != fresh.predict(pc * 37 + 5, 0);
    }
    EXPECT_TRUE(diverged); // Training visibly moved the tables...
    trained.flushSpeculativeState();
    for (std::uint64_t pc = 0; pc < 64; ++pc) {
        for (std::uint64_t hist : {0ULL, 0x5AULL, 0xFFFFULL}) {
            EXPECT_EQ(trained.predict(pc, hist),
                      fresh.predict(pc, hist));
        }
    }
    // ...and a flushed predictor trains exactly like a fresh one
    // (bit-identical state, so flushed runs stay deterministic).
    for (int round = 0; round < 50; ++round) {
        trained.update(11, 3, round % 3 == 0);
        fresh.update(11, 3, round % 3 == 0);
    }
    EXPECT_EQ(trained.predict(11, 3), fresh.predict(11, 3));
}

// --- Context-switch register banking ------------------------------------

TEST(ContextSwitch, BanksRegistersAndZeroInitsFreshTenants)
{
    // Tenant 0 sets r1=111 and yields. Tenant 1 must see r1 == 0 (a
    // fresh tenant starts from zeroed architectural state) — if it
    // sees anything else it spins forever and the run cannot halt.
    // When tenant 1 yields back, tenant 0's r1=111 must be restored.
    sb::ProgramBuilder b;
    b.tenantEntry(0);
    b.movi(1, 111);
    b.switchTenant(1);
    b.halt(); // Tenant 0's resume point.

    b.tenantEntry(1);
    b.movi(2, 0);
    const auto spin = b.here();
    b.bne(1, 2, spin); // r1 != 0 -> leaked state, spin forever.
    b.movi(1, 222);
    b.switchTenant(0);
    b.halt(); // Unreachable terminator.

    const sb::Program prog = b.build("banking-test");
    sb::SchemeConfig sc;
    sb::Core core(sb::CoreConfig::mega(), sc, sb::makeScheme(sc), prog);
    const sb::RunResult res = core.run(1'000'000, 100'000);
    EXPECT_TRUE(res.halted);
    EXPECT_EQ(core.contextSwitchCount(), 2u);
    EXPECT_EQ(core.activeTenant(), 0);
    EXPECT_EQ(core.readArchReg(1), 111u); // Banked out and back in.
}

// --- Server-mix workload ------------------------------------------------

sb::RunOutcome
mixOutcome(sb::Scheme scheme, const sb::CoreConfig &core,
           bool hostile = true)
{
    sb::ServerMixParams p;
    p.hostile = hostile;
    sb::RunSpec spec;
    spec.core = core;
    spec.scheme.scheme = scheme;
    spec.workload = sb::tenantWorkloadName(p);
    spec.warmupInsts = 0;
    spec.measureInsts = 0;
    return sb::runServerMixCell(spec);
}

TEST(ServerMix, WorkloadNameRoundTripsAndRejectsGarbage)
{
    sb::ServerMixParams p;
    p.tenants = 3;
    p.requests = 12;
    p.work = 9;
    p.hostile = false;
    p.seed = 99;
    const std::string name = sb::tenantWorkloadName(p);
    EXPECT_EQ(name, "mt:tenants=3:requests=12:work=9:hostile=0:seed=99");
    EXPECT_TRUE(sb::isTenantWorkload(name));
    EXPECT_FALSE(sb::isTenantWorkload("gadget:spectre-v1:secret=1:seed=2"));
    sb::ServerMixParams q;
    ASSERT_TRUE(sb::parseTenantWorkload(name, q));
    EXPECT_EQ(q.tenants, 3u);
    EXPECT_EQ(q.requests, 12u);
    EXPECT_EQ(q.work, 9u);
    EXPECT_FALSE(q.hostile);
    EXPECT_EQ(q.seed, 99u);
    EXPECT_FALSE(sb::parseTenantWorkload("mt:tenants=3", q));
    EXPECT_FALSE(sb::parseTenantWorkload("nonsense", q));
}

TEST(ServerMix, BenignMixRunsToHaltAcrossShapes)
{
    for (unsigned tenants : {2u, 4u}) {
        sb::ServerMixParams p;
        p.tenants = tenants;
        p.hostile = false;
        const sb::ServerMixProgram mix = sb::buildServerMix(p);
        EXPECT_EQ(mix.requestEnds.size(), tenants * p.requests);
        sb::SchemeConfig sc;
        sb::Core core(sb::CoreConfig::mega(), sc, sb::makeScheme(sc),
                      mix.program);
        const sb::RunResult res = core.run(1'000'000'000ULL, 10'000'000ULL);
        EXPECT_TRUE(res.halted) << tenants << " tenants";
        EXPECT_EQ(core.contextSwitchCount(), tenants * p.requests);
    }
}

TEST(ServerMix, CellReportsOrderedQuantilesAndSwitches)
{
    const sb::RunOutcome out =
        mixOutcome(sb::Scheme::Baseline, sb::CoreConfig::mega());
    EXPECT_EQ(out.stat("mt_halted"), 1u);
    EXPECT_EQ(out.stat("mt_requests"), out.stat("mt_total_requests"));
    EXPECT_EQ(out.stat("mt_context_switches"),
              out.stat("mt_total_requests"));
    EXPECT_GT(out.stat("mt_p50"), 0u);
    EXPECT_LE(out.stat("mt_p50"), out.stat("mt_p95"));
    EXPECT_LE(out.stat("mt_p95"), out.stat("mt_p99"));
}

TEST(ServerMix, HostileTenantLeaksOnBaselineOnly)
{
    // The in-stream v1 gadget transmits tenant 1's secret from tenant
    // 0's instruction stream on the unprotected core — under either
    // switch policy, since its training never crosses a switch — and
    // every dataflow scheme blocks the transient transmit. (DoM is
    // deliberately absent: it declares only sandboxing, and the
    // victim keeps its own secret L1-hot, which delay-on-miss never
    // claimed to cover.)
    EXPECT_GE(mixOutcome(sb::Scheme::Baseline, sb::CoreConfig::mega())
                  .stat("mt_cross_viol"),
              1u);
    EXPECT_GE(mixOutcome(sb::Scheme::Baseline,
                         sb::CoreConfig::megaFlush())
                  .stat("mt_cross_viol"),
              1u);
    for (sb::Scheme scheme :
         {sb::Scheme::SttRename, sb::Scheme::SttIssue, sb::Scheme::Nda,
          sb::Scheme::NdaStrict, sb::Scheme::DelayAll}) {
        EXPECT_EQ(mixOutcome(scheme, sb::CoreConfig::mega())
                      .stat("mt_cross_viol"),
                  0u)
            << sb::schemeName(scheme);
    }
}

TEST(ServerMix, BenignMixShowsNoCrossTenantViolations)
{
    const sb::RunOutcome out = mixOutcome(
        sb::Scheme::Baseline, sb::CoreConfig::mega(), false);
    EXPECT_EQ(out.stat("mt_cross_viol"), 0u);
    EXPECT_EQ(out.stat("mt_halted"), 1u);
}

TEST(ServerMix, RerunIsDeterministic)
{
    // DoM parks loads and NDA defers broadcasts across the squash-on-
    // switch path; a survivor would perturb timing between identical
    // runs (or trip the slab's generation asserts outright).
    for (sb::Scheme scheme :
         {sb::Scheme::DelayOnMiss, sb::Scheme::Nda}) {
        const sb::RunOutcome a =
            mixOutcome(scheme, sb::CoreConfig::megaFlush());
        const sb::RunOutcome b =
            mixOutcome(scheme, sb::CoreConfig::megaFlush());
        EXPECT_EQ(a.cycles, b.cycles) << sb::schemeName(scheme);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.stats, b.stats) << sb::schemeName(scheme);
    }
}

// --- Cross-domain gadget closure under the switch policies --------------

TEST(CrossDomain, V2GadgetLeaksOnKeepAndClosesUnderFlushAndSchemes)
{
    const std::uint8_t secret = sb::verifySecretA;
    const std::uint64_t seed = sb::verifyGadgetSeed;
    sb::SchemeConfig baseline;

    // Keep policy: tenant A's BTB training survives the switch and
    // steers tenant B into the gadget.
    const sb::AttackResult keep =
        sb::runGadget(sb::GadgetKind::SpectreV2CrossDomain,
                      sb::CoreConfig::mega(), baseline, secret, seed);
    EXPECT_TRUE(keep.leaked);
    EXPECT_GT(keep.contextSwitches, 0u);

    // Flush policy: same unprotected core, poisoned entry dies at the
    // switch.
    const sb::AttackResult flush =
        sb::runGadget(sb::GadgetKind::SpectreV2CrossDomain,
                      sb::CoreConfig::megaFlush(), baseline, secret,
                      seed);
    EXPECT_FALSE(flush.leaked);

    // Retpoline: the indirect branch never consults the BTB at all.
    const sb::GadgetProgram gadget = sb::buildGadgetProgram(
        sb::GadgetKind::SpectreV2CrossDomain, secret, seed);
    const sb::TransformedProgram mitigated =
        sb::applyMitigation(sb::Mitigation::Retpoline, gadget.program);
    const sb::AttackResult retp = sb::runGadgetAttack(
        gadget, sb::CoreConfig::mega(), baseline,
        sb::makeScheme(baseline), secret, &mitigated);
    EXPECT_FALSE(retp.leaked);

    // A dataflow scheme closes it even with the poisoned BTB kept.
    sb::SchemeConfig stt;
    stt.scheme = sb::Scheme::SttRename;
    const sb::AttackResult hw =
        sb::runGadget(sb::GadgetKind::SpectreV2CrossDomain,
                      sb::CoreConfig::mega(), stt, secret, seed);
    EXPECT_FALSE(hw.leaked);
}

} // anonymous namespace
