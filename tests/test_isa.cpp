/**
 * @file
 * Unit tests for src/isa: micro-op semantics, transmitter
 * classification, program builder, and the memory image.
 */

#include <gtest/gtest.h>

#include "isa/microop.hh"
#include "isa/program.hh"

namespace
{

sb::MicroOp
op3(sb::Op op)
{
    sb::MicroOp u;
    u.op = op;
    u.dst = 1;
    u.src1 = 2;
    u.src2 = 3;
    return u;
}

TEST(MicroOp, AluSemantics)
{
    using sb::Op;
    EXPECT_EQ(sb::evalAlu(op3(Op::Add), 5, 7), 12u);
    EXPECT_EQ(sb::evalAlu(op3(Op::Sub), 5, 7),
              static_cast<sb::Word>(-2));
    EXPECT_EQ(sb::evalAlu(op3(Op::And), 0b1100, 0b1010), 0b1000u);
    EXPECT_EQ(sb::evalAlu(op3(Op::Or), 0b1100, 0b1010), 0b1110u);
    EXPECT_EQ(sb::evalAlu(op3(Op::Xor), 0b1100, 0b1010), 0b0110u);
    EXPECT_EQ(sb::evalAlu(op3(Op::Shl), 1, 4), 16u);
    EXPECT_EQ(sb::evalAlu(op3(Op::Shr), 16, 4), 1u);
    EXPECT_EQ(sb::evalAlu(op3(Op::Mul), 6, 7), 42u);
    EXPECT_EQ(sb::evalAlu(op3(Op::Div), 42, 6), 7u);
}

TEST(MicroOp, DivisionByZeroYieldsAllOnes)
{
    EXPECT_EQ(sb::evalAlu(op3(sb::Op::Div), 42, 0), ~sb::Word(0));
}

TEST(MicroOp, ShiftAmountsAreMasked)
{
    EXPECT_EQ(sb::evalAlu(op3(sb::Op::Shl), 1, 64), 1u);
    EXPECT_EQ(sb::evalAlu(op3(sb::Op::Shl), 1, 65), 2u);
}

TEST(MicroOp, MovImmUsesImmediate)
{
    sb::MicroOp u;
    u.op = sb::Op::MovImm;
    u.dst = 1;
    u.imm = -9;
    EXPECT_EQ(sb::evalAlu(u, 0, 0), static_cast<sb::Word>(-9));
}

TEST(MicroOp, BranchSemantics)
{
    using sb::Op;
    EXPECT_TRUE(sb::evalBranch(op3(Op::Beq), 4, 4));
    EXPECT_FALSE(sb::evalBranch(op3(Op::Beq), 4, 5));
    EXPECT_TRUE(sb::evalBranch(op3(Op::Bne), 4, 5));
    EXPECT_TRUE(sb::evalBranch(op3(Op::Blt),
                               static_cast<sb::Word>(-1), 0));
    EXPECT_FALSE(sb::evalBranch(op3(Op::Blt), 0,
                                static_cast<sb::Word>(-1)));
    EXPECT_TRUE(sb::evalBranch(op3(Op::Bge), 3, 3));
    EXPECT_TRUE(sb::evalBranch(op3(Op::Jmp), 0, 0));
}

TEST(MicroOp, TransmitterClassification)
{
    // Paper Sec. 3.1: loads, stores (addresses) and branches are
    // transmitters; plain arithmetic is invisible.
    EXPECT_TRUE(op3(sb::Op::Load).isTransmitter());
    EXPECT_TRUE(op3(sb::Op::Store).isTransmitter());
    EXPECT_TRUE(op3(sb::Op::Beq).isTransmitter());
    EXPECT_TRUE(op3(sb::Op::Jmp).isTransmitter());
    EXPECT_FALSE(op3(sb::Op::Add).isTransmitter());
    EXPECT_FALSE(op3(sb::Op::Mul).isTransmitter());
    EXPECT_FALSE(op3(sb::Op::FDiv).isTransmitter());
}

TEST(MicroOp, OpClassMapping)
{
    EXPECT_EQ(op3(sb::Op::Add).opClass(), sb::OpClass::IntAlu);
    EXPECT_EQ(op3(sb::Op::Mul).opClass(), sb::OpClass::IntMul);
    EXPECT_EQ(op3(sb::Op::Div).opClass(), sb::OpClass::IntDiv);
    EXPECT_EQ(op3(sb::Op::FAdd).opClass(), sb::OpClass::FpAlu);
    EXPECT_EQ(op3(sb::Op::FDiv).opClass(), sb::OpClass::FpDiv);
    EXPECT_EQ(op3(sb::Op::Load).opClass(), sb::OpClass::MemRead);
    EXPECT_EQ(op3(sb::Op::Store).opClass(), sb::OpClass::MemWrite);
    EXPECT_EQ(op3(sb::Op::Beq).opClass(), sb::OpClass::Branch);
}

TEST(MicroOp, DisassembleMentionsOpcode)
{
    EXPECT_NE(op3(sb::Op::Add).disassemble().find("add"),
              std::string::npos);
    EXPECT_NE(op3(sb::Op::Load).disassemble().find("ld"),
              std::string::npos);
}

TEST(MemoryImage, WriteReadRoundTrip)
{
    sb::MemoryImage mem;
    mem.write(0x1000, 42);
    EXPECT_EQ(mem.read(0x1000), 42u);
    EXPECT_TRUE(mem.contains(0x1000));
    EXPECT_FALSE(mem.contains(0x2000));
}

TEST(MemoryImage, SubWordAddressesAlias)
{
    sb::MemoryImage mem;
    mem.write(0x1000, 42);
    EXPECT_EQ(mem.read(0x1003), 42u); // Same 8-byte word.
    mem.write(0x1007, 7);
    EXPECT_EQ(mem.read(0x1000), 7u);
}

TEST(MemoryImage, BackgroundIsDeterministicAndVaried)
{
    sb::MemoryImage a;
    sb::MemoryImage b;
    EXPECT_EQ(a.read(0x5000), b.read(0x5000));
    EXPECT_NE(a.read(0x5000), a.read(0x5008));
}

TEST(ProgramBuilder, BackwardBranchTargets)
{
    sb::ProgramBuilder b;
    b.movi(1, 0);
    const auto loop = b.here();
    b.addi(1, 1, 1);
    b.blt(1, 2, loop);
    const sb::Program p = b.build();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.code[2].target, loop);
}

TEST(ProgramBuilder, ForwardLabelsBackpatch)
{
    sb::ProgramBuilder b;
    const auto skip = b.futureLabel();
    b.beq(1, 2, skip);
    b.addi(3, 3, 1);
    b.bind(skip);
    b.halt();
    const sb::Program p = b.build();
    EXPECT_EQ(p.code[0].target, 2u);
}

TEST(ProgramBuilder, UnboundLabelDies)
{
    sb::ProgramBuilder b;
    const auto skip = b.futureLabel();
    b.beq(1, 2, skip);
    EXPECT_DEATH(b.build(), "unbound label");
}

TEST(ProgramBuilder, EmitterEncodings)
{
    sb::ProgramBuilder b;
    b.load(1, 2, 16);
    b.store(3, 4, -8);
    const sb::Program p = b.build();
    EXPECT_EQ(p.code[0].op, sb::Op::Load);
    EXPECT_EQ(p.code[0].dst, 1);
    EXPECT_EQ(p.code[0].src1, 2);
    EXPECT_EQ(p.code[0].imm, 16);
    EXPECT_EQ(p.code[1].op, sb::Op::Store);
    EXPECT_EQ(p.code[1].src1, 3); // Address operand.
    EXPECT_EQ(p.code[1].src2, 4); // Data operand.
    EXPECT_EQ(p.code[1].imm, -8);
}

TEST(ProgramBuilder, DisassembleWholeProgram)
{
    sb::ProgramBuilder b;
    b.movi(1, 5);
    b.halt();
    const sb::Program p = b.build("demo");
    const std::string d = p.disassemble();
    EXPECT_NE(d.find("movi"), std::string::npos);
    EXPECT_NE(d.find("halt"), std::string::npos);
}

} // anonymous namespace
