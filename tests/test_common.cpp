/**
 * @file
 * Unit tests for src/common: RNG, statistics, configurations, and
 * table rendering.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/config.hh"
#include "common/types.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    sb::Rng a(42);
    sb::Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    sb::Rng a(1);
    sb::Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInBounds)
{
    sb::Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    sb::Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    sb::Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, UniformInUnitInterval)
{
    sb::Rng rng(13);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    sb::Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, GeometricMeanRoughlyMatches)
{
    sb::Rng rng(19);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.geometric(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.25);
}

TEST(Stats, CounterBasics)
{
    sb::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HistogramBuckets)
{
    sb::Histogram h(4, 10);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(35);
    h.sample(1000); // Overflow -> last bucket.
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 9 + 10 + 35 + 1000) / 5.0);
}

TEST(Stats, HistogramQuantiles)
{
    // Unit-width buckets make quantiles exact: samples 1..100 pin the
    // tail-latency extraction the multi-tenant report relies on.
    sb::Histogram h(128, 1);
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.sample(v);
    EXPECT_EQ(h.quantile(0.50), 50u);
    EXPECT_EQ(h.quantile(0.95), 95u);
    EXPECT_EQ(h.quantile(0.99), 99u);
    EXPECT_EQ(h.quantile(0.0), 1u);
    EXPECT_EQ(h.quantile(1.0), 100u);

    // Wider buckets report the bucket's upper edge (an upper bound).
    sb::Histogram w(16, 10);
    for (std::uint64_t v = 1; v <= 100; ++v)
        w.sample(v);
    EXPECT_EQ(w.quantile(0.50), 59u);

    // The overflow bucket has no upper edge: it reports the largest
    // sample seen instead.
    sb::Histogram o(4, 10);
    o.sample(5);
    o.sample(500);
    EXPECT_EQ(o.quantile(1.0), 500u);

    sb::Histogram empty(4, 10);
    EXPECT_EQ(empty.quantile(0.5), 0u);
}

TEST(Stats, GroupRegistersAndRenders)
{
    sb::StatGroup g("core");
    ++g.counter("commits");
    g.counter("commits") += 2;
    EXPECT_EQ(g.value("commits"), 3u);
    EXPECT_EQ(g.value("missing"), 0u);
    const std::string out = g.render();
    EXPECT_NE(out.find("core.commits 3"), std::string::npos);
    g.reset();
    EXPECT_EQ(g.value("commits"), 0u);
}

TEST(Config, PresetWidthsMatchTable1)
{
    const auto presets = sb::CoreConfig::boomPresets();
    ASSERT_EQ(presets.size(), 4u);
    EXPECT_EQ(presets[0].coreWidth, 1u);
    EXPECT_EQ(presets[1].coreWidth, 2u);
    EXPECT_EQ(presets[2].coreWidth, 3u);
    EXPECT_EQ(presets[3].coreWidth, 4u);
    EXPECT_EQ(presets[0].robEntries, 32u);
    EXPECT_EQ(presets[1].robEntries, 64u);
    EXPECT_EQ(presets[2].robEntries, 96u);
    EXPECT_EQ(presets[3].robEntries, 128u);
    EXPECT_EQ(presets[3].memPorts, 2u);
}

TEST(Config, PresetsAreInternallyConsistent)
{
    for (const auto &cfg : sb::CoreConfig::boomPresets()) {
        EXPECT_GT(cfg.numPhysRegs, sb::numArchRegs) << cfg.name;
        EXPECT_GE(cfg.fetchWidth, cfg.coreWidth) << cfg.name;
        EXPECT_GE(cfg.robEntries,
                  cfg.ldqEntries) << cfg.name;
        EXPECT_GE(cfg.iqEntries, 2 * cfg.coreWidth) << cfg.name;
    }
}

TEST(Config, Gem5ConfigsDifferAsDescribed)
{
    const auto stt = sb::CoreConfig::gem5Stt();
    const auto nda = sb::CoreConfig::gem5Nda();
    // Sec. 9.5: the original STT evaluation used a single-cycle L1.
    EXPECT_EQ(stt.l1d.latency, 1u);
    EXPECT_GT(nda.l1d.latency, stt.l1d.latency);
    EXPECT_GT(stt.robEntries, nda.robEntries);
}

TEST(Config, SchemeNamesMatchPaperLabels)
{
    EXPECT_STREQ(sb::schemeName(sb::Scheme::SttRename), "STT-Rename");
    EXPECT_STREQ(sb::schemeName(sb::Scheme::SttIssue), "STT-Issue");
    EXPECT_STREQ(sb::schemeName(sb::Scheme::Nda), "NDA");
    EXPECT_EQ(sb::paperSchemes().size(), 3u);
}

TEST(Table, RendersAlignedCells)
{
    sb::TextTable t;
    t.header({"a", "bb"});
    t.row({"1", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| a"), std::string::npos);
    EXPECT_NE(out.find("| 1"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(sb::TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(sb::TextTable::pct(0.5, 1), "50.0%");
}

} // anonymous namespace
