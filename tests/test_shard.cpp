/**
 * @file
 * Shard-tier tests: wire-protocol framing and round-trip fidelity,
 * the crash-safe result-cache framing (torn tails, corrupt records,
 * two concurrent writer processes), the per-cell wall-clock deadline,
 * and the supervised dispatcher end-to-end against the real
 * `sbsim serve` worker binary under deterministic SB_FAULT injection:
 * crashes, hangs, poisoned cells, a worker binary that can never
 * serve, and SIGINT-driven graceful interruption. The load-bearing
 * property throughout: whatever is killed, aggregates stay
 * bit-identical to an in-process run.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/fault.hh"
#include "common/signals.hh"
#include "harness/engine.hh"
#include "harness/experiment.hh"
#include "harness/protocol.hh"
#include "harness/reporting.hh"
#include "harness/result_cache.hh"
#include "harness/shard.hh"

#ifndef SB_SBSIM_PATH
#define SB_SBSIM_PATH ""
#endif

namespace
{

sb::RunSpec
quickSpec(const std::string &bench, sb::Scheme scheme)
{
    sb::RunSpec s;
    s.core = sb::CoreConfig::medium();
    sb::SchemeConfig scfg;
    scfg.scheme = scheme;
    s.scheme = scfg;
    s.workload = bench;
    s.warmupInsts = 5000;
    s.measureInsts = 15000;
    return s;
}

std::vector<sb::RunSpec>
smallBatch()
{
    return {
        quickSpec("557.xz", sb::Scheme::Baseline),
        quickSpec("557.xz", sb::Scheme::SttIssue),
        quickSpec("541.leela", sb::Scheme::Baseline),
        quickSpec("541.leela", sb::Scheme::Nda),
        quickSpec("503.bwaves", sb::Scheme::SttRename),
        quickSpec("525.x264", sb::Scheme::Baseline),
    };
}

std::vector<std::string>
keysOf(const std::vector<sb::RunSpec> &specs)
{
    std::vector<std::string> keys;
    for (const auto &s : specs)
        keys.push_back(s.specKey());
    return keys;
}

void
expectSameOutcome(const sb::RunOutcome &a, const sb::RunOutcome &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.coreName, b.coreName);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.transmitViolations, b.transmitViolations);
    EXPECT_EQ(a.consumeViolations, b.consumeViolations);
    EXPECT_EQ(a.stats, b.stats);
}

std::string
freshDir(const std::string &name)
{
    const std::string dir =
        (std::filesystem::path(::testing::TempDir()) / name).string();
    std::filesystem::remove_all(dir);
    return dir;
}

/** RAII SB_FAULT setting: arms for children, restores and re-parses
 *  the parent's view on scope exit. */
class ScopedFault
{
  public:
    explicit ScopedFault(const char *value)
    {
        ::setenv("SB_FAULT", value, 1);
        sb::faultResetForTesting();
    }
    ~ScopedFault()
    {
        ::unsetenv("SB_FAULT");
        sb::faultResetForTesting();
    }
};

sb::ShardOptions
shardOpts(unsigned shards, const std::string &cacheDir)
{
    sb::ShardOptions opt;
    opt.shards = shards;
    opt.cacheDir = cacheDir;
    opt.workerPath = SB_SBSIM_PATH;
    return opt;
}

// --- Wire protocol ------------------------------------------------------

TEST(Protocol, FrameRoundTripOverPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::string payload = "{\"cmd\":\"hello\",\"proto\":1}";
    ASSERT_TRUE(sb::writeFrame(fds[1], payload));
    std::string got;
    ASSERT_EQ(sb::readFrame(fds[0], got, 1000), sb::RecvStatus::Ok);
    EXPECT_EQ(got, payload);

    // EOF at a frame boundary reads as Closed, not an error.
    ::close(fds[1]);
    EXPECT_EQ(sb::readFrame(fds[0], got, 1000), sb::RecvStatus::Closed);
    ::close(fds[0]);
}

TEST(Protocol, FrameReaderReassemblesSplitFrames)
{
    // Three frames, fed one byte at a time: framing must never depend
    // on read() boundaries.
    std::string stream;
    const std::vector<std::string> payloads = {"a", "", "{\"x\":42}"};
    for (const auto &p : payloads) {
        const std::uint32_t len = static_cast<std::uint32_t>(p.size());
        char prefix[4] = {static_cast<char>(len & 0xff),
                          static_cast<char>((len >> 8) & 0xff),
                          static_cast<char>((len >> 16) & 0xff),
                          static_cast<char>((len >> 24) & 0xff)};
        stream.append(prefix, 4);
        stream.append(p);
    }

    sb::FrameReader reader;
    std::vector<std::string> got;
    std::string frame;
    for (const char c : stream) {
        reader.feed(&c, 1);
        while (reader.next(frame))
            got.push_back(frame);
    }
    EXPECT_EQ(got, payloads);
    EXPECT_FALSE(reader.corrupt());
    EXPECT_EQ(reader.pendingBytes(), 0u);
}

TEST(Protocol, OversizedFrameLengthMarksStreamCorrupt)
{
    sb::FrameReader reader;
    const char huge[4] = {'\xff', '\xff', '\xff', '\xff'};
    reader.feed(huge, 4);
    std::string frame;
    EXPECT_FALSE(reader.next(frame));
    EXPECT_TRUE(reader.corrupt());
}

TEST(Protocol, RunSpecSurvivesJsonRoundTripForEveryPresetAndScheme)
{
    // The dispatcher addresses cells by specKey; a worker must
    // reconstruct the exact cell or the cache fills with mislabeled
    // results. canonical() covers every field by contract, so
    // canonical equality is the strongest available check.
    for (const sb::CoreConfig &core : sb::CoreConfig::boomPresets()) {
        for (const sb::SchemeConfig &scheme : sb::allSchemeConfigs()) {
            for (const sb::Mitigation m : sb::allMitigations()) {
                sb::RunSpec spec;
                spec.core = core;
                spec.scheme = scheme;
                spec.workload = "557.xz";
                spec.warmupInsts = 123;
                spec.measureInsts = 4567;
                spec.maxCycles = 89012;
                spec.mitigation.kind = m;

                sb::RunSpec back;
                ASSERT_TRUE(sb::runSpecFromJson(sb::toJson(spec), back));
                EXPECT_EQ(back.canonical(), spec.canonical());
                EXPECT_EQ(back.specKey(), spec.specKey());
            }
        }
    }

    // A frame missing the mitigation field is from a pre-v2 worker:
    // the parse must fail loudly, not default the field (the cache
    // would fill with mislabeled cells).
    sb::RunSpec spec;
    spec.workload = "557.xz";
    sb::Json j = sb::toJson(spec);
    j.set("mitigation", sb::Json::str("not-a-mitigation"));
    sb::RunSpec back;
    EXPECT_FALSE(sb::runSpecFromJson(j, back));
}

TEST(Protocol, DoneMessageRoundTripsOutcome)
{
    sb::RunOutcome out;
    out.workload = "557.xz";
    out.coreName = "medium";
    out.scheme = sb::Scheme::SttIssue;
    out.cycles = 123456;
    out.instructions = 78901;
    // ipc is derived (instructions / cycles) on both ends of the
    // wire; a value consistent with the integers round-trips exactly.
    out.ipc = static_cast<double>(out.instructions)
              / static_cast<double>(out.cycles);
    out.transmitViolations = 3;
    out.consumeViolations = 1;
    out.stats["committed_insts"] = 78901;
    out.stats["squashes"] = 17;

    const sb::Json msg = sb::makeDoneMsg(42, out, true);
    sb::Json parsed;
    ASSERT_TRUE(sb::Json::parse(msg.dump(), parsed));
    EXPECT_EQ(sb::messageCmd(parsed), "done");
    EXPECT_EQ(parsed.at("id").asUint(), 42u);
    EXPECT_TRUE(parsed.at("cached").asBool());
    sb::RunOutcome back;
    ASSERT_TRUE(sb::outcomeFromJson(parsed.at("outcome"), back));
    expectSameOutcome(back, out);
}

// --- Scheduling policy --------------------------------------------------

TEST(ShardPolicy, BackoffDoublesAndCaps)
{
    EXPECT_EQ(sb::backoffDelayMs(0, 25, 2000), 0u);
    EXPECT_EQ(sb::backoffDelayMs(1, 25, 2000), 25u);
    EXPECT_EQ(sb::backoffDelayMs(2, 25, 2000), 50u);
    EXPECT_EQ(sb::backoffDelayMs(3, 25, 2000), 100u);
    EXPECT_EQ(sb::backoffDelayMs(8, 25, 2000), 2000u);
    EXPECT_EQ(sb::backoffDelayMs(64, 25, 2000), 2000u); // No overflow.
    EXPECT_EQ(sb::backoffDelayMs(3, 0, 2000), 0u);
}

TEST(ShardPolicy, PartitionIsDeterministicAndInRange)
{
    const std::vector<std::string> keys = {"a", "b", "c", "a", "d",
                                           "e", "f", "a"};
    const auto home = sb::partitionByKey(keys, 3);
    ASSERT_EQ(home.size(), keys.size());
    for (const unsigned h : home)
        EXPECT_LT(h, 3u);
    // Same key, same shard: a cell always lands near its cached
    // sibling (and the partition is stable across processes).
    EXPECT_EQ(home[0], home[3]);
    EXPECT_EQ(home[0], home[7]);
    EXPECT_EQ(home, sb::partitionByKey(keys, 3));
}

// --- Cache framing and crash safety ------------------------------------

TEST(CacheFraming, FramedRecordRoundTripsAndRejectsBitRot)
{
    sb::RunOutcome out;
    out.workload = "541.leela";
    out.coreName = "large";
    out.scheme = sb::Scheme::Nda;
    out.cycles = 999;
    out.instructions = 1234;
    out.ipc = static_cast<double>(out.instructions)
              / static_cast<double>(out.cycles);
    out.stats["committed_insts"] = 1234;

    const std::string line = sb::frameCacheRecord("deadbeef01234567", out);
    std::string key;
    sb::RunOutcome back;
    bool legacy = true;
    ASSERT_TRUE(sb::parseCacheLine(line, key, back, legacy));
    EXPECT_FALSE(legacy);
    EXPECT_EQ(key, "deadbeef01234567");
    expectSameOutcome(back, out);

    // Any single flipped payload byte must fail the checksum.
    std::string rotted = line;
    rotted[line.size() / 2] ^= 0x20;
    EXPECT_FALSE(sb::parseCacheLine(rotted, key, back, legacy));

    // A truncated tail (killed writer) must be rejected by length.
    EXPECT_FALSE(sb::parseCacheLine(line.substr(0, line.size() - 5),
                                    key, back, legacy));
}

TEST(CacheFraming, TornTailIsRecoveredAndRepaired)
{
    const std::string dir = freshDir("sb_shard_torntail");
    sb::RunOutcome out;
    out.workload = "557.xz";
    out.coreName = "small";
    out.scheme = sb::Scheme::Baseline;
    out.cycles = 10;
    out.instructions = 20;

    {
        sb::ResultCache cache(dir);
        ASSERT_TRUE(cache.ok());
        cache.store("1111111111111111", out);
        cache.store("2222222222222222", out);
    }
    // Simulate a writer killed mid-append: a torn half record at the
    // tail of the file.
    {
        const std::string torn = sb::frameCacheRecord("333333333333", out);
        std::ofstream f(dir + "/results.jsonl",
                        std::ios::app | std::ios::binary);
        f.write(torn.data(),
                static_cast<std::streamsize>(torn.size() / 2));
    }

    sb::ResultCache reloaded(dir);
    ASSERT_TRUE(reloaded.ok());
    EXPECT_EQ(reloaded.size(), 2u);
    EXPECT_EQ(reloaded.damagedOnLoad(), 1u);
    sb::RunOutcome got;
    EXPECT_TRUE(reloaded.lookup("1111111111111111", got));
    EXPECT_TRUE(reloaded.lookup("2222222222222222", got));

    // Load compacts the damage away: every line in the repaired file
    // parses, and a third loader sees a clean file.
    sb::ResultCache clean(dir);
    EXPECT_EQ(clean.size(), 2u);
    EXPECT_EQ(clean.damagedOnLoad(), 0u);
}

TEST(CacheFraming, TornWriteFaultTearsExactlyOneRecord)
{
    const std::string dir = freshDir("sb_shard_tornfault");
    sb::RunOutcome out;
    out.workload = "557.xz";
    out.coreName = "small";
    out.scheme = sb::Scheme::Baseline;
    out.cycles = 10;
    out.instructions = 20;

    {
        ScopedFault fault("torn-write:2");
        sb::ResultCache cache(dir);
        ASSERT_TRUE(cache.ok());
        cache.store("aaaaaaaaaaaaaaaa", out); // Intact.
        cache.store("bbbbbbbbbbbbbbbb", out); // Torn mid-line.
    }

    // The torn record is unrecoverable, the intact one survives, and
    // reload repairs the file.
    sb::ResultCache reloaded(dir);
    ASSERT_TRUE(reloaded.ok());
    sb::RunOutcome got;
    EXPECT_TRUE(reloaded.lookup("aaaaaaaaaaaaaaaa", got));
    EXPECT_FALSE(reloaded.lookup("bbbbbbbbbbbbbbbb", got));
    EXPECT_GE(reloaded.damagedOnLoad(), 1u);
    sb::ResultCache clean(dir);
    EXPECT_EQ(clean.damagedOnLoad(), 0u);
}

TEST(CacheFraming, TwoWriterProcessesLoseNothing)
{
    // The acceptance criterion for the shared cache: two processes
    // appending concurrently (as two shard workers do) must not lose
    // or interleave a single record.
    const std::string dir = freshDir("sb_shard_twowriters");
    {
        sb::ResultCache create(dir); // Settle the directory/lock.
        ASSERT_TRUE(create.ok());
    }
    constexpr int perWriter = 200;

    const auto writer = [&dir](char tag) {
        sb::ResultCache cache(dir);
        if (!cache.ok())
            _exit(1);
        sb::RunOutcome out;
        out.workload = "557.xz";
        out.coreName = "small";
        out.scheme = sb::Scheme::Baseline;
        for (int i = 0; i < perWriter; ++i) {
            char key[17];
            std::snprintf(key, sizeof(key), "%c%015d", tag, i);
            out.cycles = static_cast<std::uint64_t>(i);
            cache.store(key, out);
        }
        _exit(0);
    };

    const pid_t a = ::fork();
    ASSERT_GE(a, 0);
    if (a == 0)
        writer('a');
    const pid_t b = ::fork();
    ASSERT_GE(b, 0);
    if (b == 0)
        writer('b');

    int statusA = 0, statusB = 0;
    ASSERT_EQ(::waitpid(a, &statusA, 0), a);
    ASSERT_EQ(::waitpid(b, &statusB, 0), b);
    ASSERT_TRUE(WIFEXITED(statusA) && WEXITSTATUS(statusA) == 0);
    ASSERT_TRUE(WIFEXITED(statusB) && WEXITSTATUS(statusB) == 0);

    sb::ResultCache merged(dir);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(merged.damagedOnLoad(), 0u);
    EXPECT_EQ(merged.size(), 2u * perWriter);
    sb::RunOutcome got;
    for (int i = 0; i < perWriter; ++i) {
        for (const char tag : {'a', 'b'}) {
            char key[17];
            std::snprintf(key, sizeof(key), "%c%015d", tag, i);
            ASSERT_TRUE(merged.lookup(key, got)) << key;
            EXPECT_EQ(got.cycles, static_cast<std::uint64_t>(i));
        }
    }
}

// --- Per-cell wall-clock deadline --------------------------------------

TEST(CellTimeout, DeadlineOverrunIsMarkedAndUncacheable)
{
    const auto spec = quickSpec("557.xz", sb::Scheme::Baseline);
    sb::RunHooks hooks;
    hooks.wallDeadlineSec = 1e-6; // Trips at the first deadline check.
    const auto out = sb::ExperimentRunner::runOne(spec, hooks);
    EXPECT_EQ(out.stat("watchdog_tripped"), 1u);
    EXPECT_FALSE(sb::outcomeIsCacheable(out));

    // A generous deadline must not perturb the measurement at all.
    sb::RunHooks lenient;
    lenient.wallDeadlineSec = 3600;
    const auto normal = sb::ExperimentRunner::runOne(spec);
    const auto watched = sb::ExperimentRunner::runOne(spec, lenient);
    expectSameOutcome(watched, normal);
    EXPECT_TRUE(sb::outcomeIsCacheable(watched));
}

// --- Dispatcher end-to-end against the real worker ---------------------

TEST(ShardDispatcher, MatchesInProcessBitExact)
{
    const auto specs = smallBatch();
    const std::string dir = freshDir("sb_shard_e2e");
    sb::ShardDispatcher dispatcher(shardOpts(2, dir));
    const auto results = dispatcher.run(specs, keysOf(specs));

    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectSameOutcome(results[i],
                          sb::ExperimentRunner::runOne(specs[i]));

    const sb::ShardReport &report = dispatcher.report();
    EXPECT_EQ(report.workersSpawned, 2u);
    EXPECT_EQ(report.crashes, 0u);
    EXPECT_EQ(report.hangs, 0u);
    EXPECT_FALSE(report.degraded);
    EXPECT_TRUE(report.quarantinedKeys.empty());
    // Workers persist before replying: every cell is already on disk.
    for (const bool persisted : dispatcher.persistedByWorker())
        EXPECT_TRUE(persisted);
    sb::ResultCache cache(dir);
    EXPECT_EQ(cache.size(), specs.size());
}

TEST(ShardDispatcher, WorkersKilledMidBatchStillBitExact)
{
    // Every worker is killed before its 2nd reply, over and over.
    // Store-before-reply plus retry must converge on exactly the
    // in-process aggregates; attempts are uncapped so quarantine
    // cannot mask a lost cell.
    ScopedFault fault("crash:2");
    const auto specs = smallBatch();
    const std::string dir = freshDir("sb_shard_crash");
    sb::ShardOptions opt = shardOpts(2, dir);
    opt.maxAttemptsPerCell = 1000;
    opt.backoffBaseMs = 1; // Keep the test fast.
    sb::ShardDispatcher dispatcher(opt);
    const auto results = dispatcher.run(specs, keysOf(specs));

    const sb::ShardReport &report = dispatcher.report();
    EXPECT_GE(report.crashes, 1u);
    EXPECT_GE(report.retries, 1u);
    EXPECT_GT(report.workersSpawned, 2u);
    EXPECT_FALSE(report.degraded);
    EXPECT_TRUE(report.quarantinedKeys.empty());

    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectSameOutcome(results[i],
                          sb::ExperimentRunner::runOne(specs[i]));
}

TEST(ShardDispatcher, HungWorkerIsKilledAndCellRetried)
{
    // Workers wedge instead of sending their 2nd reply; the
    // dispatcher's kill deadline (cellTimeout + grace) must SIGKILL
    // them and the batch must still converge bit-exactly.
    ScopedFault fault("hang:2");
    const auto specs = std::vector<sb::RunSpec>{
        quickSpec("557.xz", sb::Scheme::Baseline),
        quickSpec("541.leela", sb::Scheme::Baseline),
        quickSpec("503.bwaves", sb::Scheme::Baseline),
    };
    const std::string dir = freshDir("sb_shard_hang");
    sb::ShardOptions opt = shardOpts(2, dir);
    opt.cellTimeoutSec = 2; // Cells take ~ms; only hangs hit this.
    opt.maxAttemptsPerCell = 1000;
    opt.backoffBaseMs = 1;
    sb::ShardDispatcher dispatcher(opt);
    const auto results = dispatcher.run(specs, keysOf(specs));

    const sb::ShardReport &report = dispatcher.report();
    EXPECT_GE(report.hangs, 1u);
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectSameOutcome(results[i],
                          sb::ExperimentRunner::runOne(specs[i]));
}

TEST(ShardDispatcher, PoisonedCellIsQuarantinedNotFatal)
{
    // One cell crashes every worker that touches it, on every
    // attempt. The batch must complete: healthy cells bit-exact, the
    // poisoned cell stubbed and reported.
    ScopedFault fault("poison:525.x264");
    const auto specs = smallBatch();
    const std::string dir = freshDir("sb_shard_poison");
    sb::ShardOptions opt = shardOpts(2, dir);
    opt.maxAttemptsPerCell = 2;
    opt.backoffBaseMs = 1;
    sb::ShardDispatcher dispatcher(opt);
    const auto results = dispatcher.run(specs, keysOf(specs));

    const sb::ShardReport &report = dispatcher.report();
    ASSERT_EQ(report.quarantinedKeys.size(), 1u);
    EXPECT_FALSE(report.degraded);

    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].workload == "525.x264") {
            EXPECT_EQ(report.quarantinedKeys[0], specs[i].specKey());
            EXPECT_EQ(results[i].stat("quarantined"), 1u);
            EXPECT_FALSE(sb::outcomeIsCacheable(results[i]));
        } else {
            expectSameOutcome(results[i],
                              sb::ExperimentRunner::runOne(specs[i]));
        }
    }
}

TEST(ShardDispatcher, UselessWorkerBinaryDegradesToInProcess)
{
    // A worker that can never serve (exits 1 immediately, no hello):
    // every slot is abandoned after its barren respawns and the
    // dispatcher must finish the batch itself, bit-exactly.
    const auto specs = std::vector<sb::RunSpec>{
        quickSpec("557.xz", sb::Scheme::Baseline),
        quickSpec("541.leela", sb::Scheme::Nda),
    };
    sb::ShardOptions opt = shardOpts(2, "");
    opt.workerArgv = {"/bin/false"};
    opt.maxBarrenSpawns = 2;
    opt.backoffBaseMs = 1;
    sb::ShardDispatcher dispatcher(opt);
    const auto results = dispatcher.run(specs, keysOf(specs));

    const sb::ShardReport &report = dispatcher.report();
    EXPECT_TRUE(report.degraded);
    EXPECT_EQ(report.inProcess, specs.size());
    EXPECT_GE(report.crashes, 1u);

    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectSameOutcome(results[i],
                          sb::ExperimentRunner::runOne(specs[i]));
}

// --- Engine integration -------------------------------------------------

TEST(EngineShards, ShardedEngineMatchesInProcessEngine)
{
    const auto specs = smallBatch();

    sb::ExperimentEngine::Options inprocOpt;
    inprocOpt.jobs = 2;
    sb::ExperimentEngine inproc(inprocOpt);
    const auto expected = inproc.run(specs);

    const std::string dir = freshDir("sb_shard_engine");
    sb::ExperimentEngine::Options shardedOpt;
    shardedOpt.jobs = 2;
    shardedOpt.cacheDir = dir;
    shardedOpt.shards = 2;
    shardedOpt.sbsimPath = SB_SBSIM_PATH;
    sb::ExperimentEngine sharded(shardedOpt);
    const auto got = sharded.run(specs);

    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectSameOutcome(got[i], expected[i]);
    EXPECT_EQ(sharded.stats().workersSpawned, 2u);
    EXPECT_EQ(sharded.stats().simulated, specs.size());

    // A warm rerun over the worker-written cache skips the workers
    // entirely (cache hits), still bit-exact.
    sb::ExperimentEngine warm(shardedOpt);
    const auto cached = warm.run(specs);
    EXPECT_EQ(warm.stats().cacheHits, specs.size());
    EXPECT_EQ(warm.stats().workersSpawned, 0u);
    for (std::size_t i = 0; i < cached.size(); ++i)
        expectSameOutcome(cached[i], expected[i]);
}

TEST(EngineShards, InterruptDrainsBatchWithPartialResults)
{
    // A pending interrupt makes the engine stub every remaining cell
    // instead of simulating: partial results, marked outcomes, stats
    // flagged — and nothing poisonous stored in the cache.
    sb::installSignalHandlers();
    ::raise(SIGTERM);
    ASSERT_TRUE(sb::interruptRequested());

    const std::string dir = freshDir("sb_shard_interrupt");
    sb::ExperimentEngine::Options opt;
    opt.jobs = 2;
    opt.cacheDir = dir;
    sb::ExperimentEngine engine(opt);
    const auto specs = smallBatch();
    const auto results = engine.run(specs);
    sb::clearInterruptForTesting();

    ASSERT_EQ(results.size(), specs.size());
    for (const auto &out : results) {
        EXPECT_EQ(out.stat("interrupted"), 1u);
        EXPECT_FALSE(sb::outcomeIsCacheable(out));
    }
    EXPECT_TRUE(engine.stats().interrupted);
    EXPECT_EQ(engine.stats().interruptedCells, specs.size());
    sb::ResultCache cache(dir);
    EXPECT_EQ(cache.size(), 0u);
}

} // anonymous namespace
