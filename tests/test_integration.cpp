/**
 * @file
 * Integration tests: whole-suite behaviours the paper reports must
 * hold — the exchange2 forwarding-error storm (Sec. 9.2), NDA's
 * collapse on compute-bound code, scheme orderings, and the
 * width-scaling trend (Sec. 8.2).
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/reporting.hh"

namespace
{

sb::RunOutcome
runBench(const std::string &bench, sb::Scheme scheme,
         sb::CoreConfig cfg = sb::CoreConfig::mega(),
         bool two_taint = false)
{
    sb::RunSpec s;
    s.core = std::move(cfg);
    s.scheme.scheme = scheme;
    s.scheme.twoTaintStores = two_taint;
    s.workload = bench;
    s.warmupInsts = 20000;
    s.measureInsts = 60000;
    return sb::ExperimentRunner::runOne(s);
}

TEST(Exchange2, SttRenameForwardingErrorStorm)
{
    // Paper Sec. 9.2: STT-Rename suffers orders of magnitude more
    // store-to-load forwarding errors than NDA on exchange2.
    const auto rename = runBench("548.exchange2", sb::Scheme::SttRename);
    const auto issue = runBench("548.exchange2", sb::Scheme::SttIssue);
    const auto nda = runBench("548.exchange2", sb::Scheme::Nda);

    EXPECT_GT(rename.stat("mem_order_violations"), 100u);
    EXPECT_LT(issue.stat("mem_order_violations"), 50u);
    EXPECT_LT(nda.stat("mem_order_violations"), 50u);
}

TEST(Exchange2, TwoTaintStoresFixTheStorm)
{
    const auto single =
        runBench("548.exchange2", sb::Scheme::SttRename);
    const auto two = runBench("548.exchange2", sb::Scheme::SttRename,
                              sb::CoreConfig::mega(), true);
    EXPECT_LT(two.stat("mem_order_violations"),
              single.stat("mem_order_violations") / 10);
    EXPECT_GT(two.ipc, single.ipc);
}

TEST(Imagick, NdaCollapsesSttDoesNot)
{
    // Paper Sec. 8.1: compute-bound code with loads feeding invisible
    // arithmetic — NDA loses close to half, STT close to nothing.
    const auto base = runBench("538.imagick", sb::Scheme::Baseline);
    const auto rename = runBench("538.imagick", sb::Scheme::SttRename);
    const auto nda = runBench("538.imagick", sb::Scheme::Nda);

    EXPECT_GT(rename.ipc / base.ipc, 0.90);
    EXPECT_LT(nda.ipc / base.ipc, 0.60);
    EXPECT_GT(nda.stat("deferred_broadcasts"), 1000u);
}

TEST(Bwaves, EveryoneIsInsensitive)
{
    const auto base = runBench("503.bwaves", sb::Scheme::Baseline);
    for (sb::Scheme s : {sb::Scheme::SttRename, sb::Scheme::SttIssue,
                         sb::Scheme::Nda}) {
        const auto o = runBench("503.bwaves", s);
        EXPECT_GT(o.ipc / base.ipc, 0.95) << sb::schemeName(s);
    }
}

TEST(Gcc, DependentLoadsHurtAllSchemes)
{
    const auto base = runBench("502.gcc", sb::Scheme::Baseline);
    for (sb::Scheme s : {sb::Scheme::SttRename, sb::Scheme::SttIssue,
                         sb::Scheme::Nda}) {
        const auto o = runBench("502.gcc", s);
        EXPECT_LT(o.ipc / base.ipc, 0.85) << sb::schemeName(s);
    }
}

TEST(Ordering, SttIssueBeatsSttRenameOnAverage)
{
    // Paper Sec. 9.1: STT-Issue generally outperforms STT-Rename.
    double rename_sum = 0.0;
    double issue_sum = 0.0;
    for (const char *b : {"548.exchange2", "502.gcc", "557.xz",
                          "505.mcf"}) {
        rename_sum += runBench(b, sb::Scheme::SttRename).ipc;
        issue_sum += runBench(b, sb::Scheme::SttIssue).ipc;
    }
    EXPECT_GT(issue_sum, rename_sum);
}

TEST(Scaling, RelativeLossGrowsWithWidth)
{
    // Paper Sec. 8.2 / Fig. 8: wider cores lose more relative IPC.
    // Compare the 1-wide Small with the 4-wide Mega on a sensitive
    // benchmark.
    const auto cfg_small = sb::CoreConfig::small();
    const auto cfg_mega = sb::CoreConfig::mega();

    const auto base_s =
        runBench("502.gcc", sb::Scheme::Baseline, cfg_small);
    const auto stt_s =
        runBench("502.gcc", sb::Scheme::SttRename, cfg_small);
    const auto base_m =
        runBench("502.gcc", sb::Scheme::Baseline, cfg_mega);
    const auto stt_m =
        runBench("502.gcc", sb::Scheme::SttRename, cfg_mega);

    const double rel_small = stt_s.ipc / base_s.ipc;
    const double rel_mega = stt_m.ipc / base_m.ipc;
    EXPECT_LT(rel_mega, rel_small);
}

TEST(Nda, StrictIsNoFasterThanPermissive)
{
    const auto perm = runBench("538.imagick", sb::Scheme::Nda);
    const auto strict = runBench("538.imagick", sb::Scheme::NdaStrict);
    EXPECT_LE(strict.ipc, perm.ipc * 1.02);
    EXPECT_EQ(strict.transmitViolations, 0u);
    EXPECT_EQ(strict.consumeViolations, 0u);
}

TEST(Monitor, BaselineLeaksOnTaintHeavyWorkloads)
{
    for (const char *b : {"505.mcf", "502.gcc", "531.deepsjeng"}) {
        const auto o = runBench(b, sb::Scheme::Baseline);
        EXPECT_GT(o.transmitViolations, 0u) << b;
    }
}

TEST(Stats, SchemesReportTheirMechanisms)
{
    const auto rename = runBench("502.gcc", sb::Scheme::SttRename);
    EXPECT_GT(rename.stat("scheme_select_blocks"), 0u);
    EXPECT_EQ(rename.stat("scheme_issue_kills"), 0u);

    const auto issue = runBench("502.gcc", sb::Scheme::SttIssue);
    EXPECT_GT(issue.stat("scheme_issue_kills"), 0u);

    const auto nda = runBench("502.gcc", sb::Scheme::Nda);
    EXPECT_GT(nda.stat("deferred_broadcasts"), 0u);
    EXPECT_EQ(nda.stat("scheme_select_blocks"), 0u);
}

} // anonymous namespace
