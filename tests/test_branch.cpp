/**
 * @file
 * Unit tests for src/branch: bimodal and TAGE predictors.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "branch/tage.hh"
#include "common/rng.hh"

namespace
{

/** Train/evaluate accuracy of a predictor on an outcome generator. */
template <typename Gen>
double
accuracy(sb::BranchPredictor &pred, Gen gen, int warmup, int measure)
{
    std::uint64_t hist = 0;
    int correct = 0;
    for (int i = 0; i < warmup + measure; ++i) {
        const bool taken = gen(i);
        const bool guess = pred.predict(100, hist);
        if (i >= warmup && guess == taken)
            ++correct;
        pred.update(100, hist, taken);
        hist = (hist << 1) | (taken ? 1 : 0);
    }
    return static_cast<double>(correct) / measure;
}

TEST(Bimodal, LearnsStrongBias)
{
    sb::BimodalPredictor pred;
    const double acc =
        accuracy(pred, [](int) { return true; }, 10, 500);
    EXPECT_GT(acc, 0.99);
}

TEST(Bimodal, TracksMostlyTaken)
{
    sb::BimodalPredictor pred;
    const double acc =
        accuracy(pred, [](int i) { return i % 8 != 0; }, 50, 800);
    EXPECT_GT(acc, 0.80);
}

TEST(Tage, LearnsAlwaysTaken)
{
    sb::TagePredictor pred;
    const double acc =
        accuracy(pred, [](int) { return true; }, 10, 500);
    EXPECT_GT(acc, 0.99);
}

TEST(Tage, LearnsPeriodicPatternBimodalCannot)
{
    // Period-5 loop-exit pattern: history-based prediction nails it.
    auto pattern = [](int i) { return i % 5 != 4; };
    sb::TagePredictor tage;
    sb::BimodalPredictor bimodal;
    const double tage_acc = accuracy(tage, pattern, 2000, 2000);
    const double bimodal_acc = accuracy(bimodal, pattern, 2000, 2000);
    EXPECT_GT(tage_acc, 0.95);
    EXPECT_LT(bimodal_acc, 0.90);
    EXPECT_GT(tage_acc, bimodal_acc);
}

TEST(Tage, StrugglesOnRandomOutcomes)
{
    sb::Rng rng(3);
    sb::TagePredictor pred;
    const double acc = accuracy(
        pred, [&](int) { return rng.chance(0.5); }, 2000, 4000);
    EXPECT_GT(acc, 0.40);
    EXPECT_LT(acc, 0.62);
}

TEST(Tage, BiasedRandomApproachesBiasRate)
{
    sb::Rng rng(5);
    sb::TagePredictor pred;
    // 12.5% taken: predicting not-taken is right 87.5% of the time.
    const double acc = accuracy(
        pred, [&](int) { return rng.chance(0.125); }, 2000, 4000);
    EXPECT_GT(acc, 0.80);
}

TEST(Tage, DistinguishesDifferentPcs)
{
    sb::TagePredictor pred;
    std::uint64_t hist = 0;
    // PC 1 always taken, PC 2 never taken.
    for (int i = 0; i < 200; ++i) {
        pred.update(1, hist, true);
        pred.update(2, hist, false);
    }
    EXPECT_TRUE(pred.predict(1, hist));
    EXPECT_FALSE(pred.predict(2, hist));
}

TEST(Tage, DeterministicAcrossInstances)
{
    auto run = []() {
        sb::TagePredictor pred;
        sb::Rng rng(9);
        std::uint64_t hist = 0;
        std::uint64_t signature = 0;
        for (int i = 0; i < 3000; ++i) {
            const std::uint64_t pc = rng.below(64);
            const bool taken = rng.chance(0.3);
            signature = (signature << 1)
                        ^ (pred.predict(pc, hist) ? 0x9E3779B9 : 0x85EBCA6B);
            pred.update(pc, hist, taken);
            hist = (hist << 1) | (taken ? 1 : 0);
        }
        return signature;
    };
    EXPECT_EQ(run(), run());
}

} // anonymous namespace
