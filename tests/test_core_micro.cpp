/**
 * @file
 * Unit tests for the core's microarchitectural components: rename
 * map, issue queue, LSU, shadow tracker, and security monitor.
 */

#include <gtest/gtest.h>

#include "core/issue_queue.hh"
#include "core/lsu.hh"
#include "core/rename_map.hh"
#include "core/security_monitor.hh"
#include "core/shadow_tracker.hh"

namespace
{

sb::DynInstPtr
makeInst(sb::SeqNum seq, sb::Op op)
{
    auto inst = std::make_shared<sb::DynInst>();
    inst->seq = seq;
    inst->uop.op = op;
    return inst;
}

sb::DynInstPtr
makeLoad(sb::SeqNum seq, sb::PhysReg dst = 10, sb::PhysReg base = 11)
{
    auto inst = makeInst(seq, sb::Op::Load);
    inst->uop.dst = 1;
    inst->uop.src1 = 2;
    inst->pdst = dst;
    inst->psrc1 = base;
    return inst;
}

sb::DynInstPtr
makeStore(sb::SeqNum seq, sb::PhysReg base = 12, sb::PhysReg data = 13)
{
    auto inst = makeInst(seq, sb::Op::Store);
    inst->uop.src1 = 2;
    inst->uop.src2 = 3;
    inst->psrc1 = base;
    inst->psrc2 = data;
    return inst;
}

// --- RenameMap -------------------------------------------------------

TEST(RenameMap, InitialIdentityMapping)
{
    sb::RenameMap map(sb::numArchRegs, 64);
    for (unsigned i = 0; i < sb::numArchRegs; ++i)
        EXPECT_EQ(map.lookup(i), i);
    EXPECT_EQ(map.freeCount(), 64u - sb::numArchRegs);
}

TEST(RenameMap, AllocateUpdatesMapping)
{
    sb::RenameMap map(sb::numArchRegs, 64);
    sb::PhysReg stale;
    const sb::PhysReg fresh = map.allocate(5, stale);
    EXPECT_EQ(stale, 5);
    EXPECT_EQ(map.lookup(5), fresh);
    EXPECT_NE(fresh, stale);
}

TEST(RenameMap, UnwindRestoresExactly)
{
    sb::RenameMap map(sb::numArchRegs, 64);
    sb::PhysReg stale1, stale2;
    const sb::PhysReg p1 = map.allocate(5, stale1);
    const sb::PhysReg p2 = map.allocate(5, stale2);
    EXPECT_EQ(stale2, p1);
    const unsigned free_before = map.freeCount();
    // Youngest-first walk-back.
    map.unwind(5, p2, stale2);
    EXPECT_EQ(map.lookup(5), p1);
    map.unwind(5, p1, stale1);
    EXPECT_EQ(map.lookup(5), 5);
    EXPECT_EQ(map.freeCount(), free_before + 2);
}

TEST(RenameMap, OutOfOrderUnwindDies)
{
    sb::RenameMap map(sb::numArchRegs, 64);
    sb::PhysReg stale1, stale2;
    const sb::PhysReg p1 = map.allocate(5, stale1);
    map.allocate(5, stale2);
    EXPECT_DEATH(map.unwind(5, p1, stale1), "unwind out of order");
}

TEST(RenameMap, ExhaustsFreeList)
{
    sb::RenameMap map(sb::numArchRegs, sb::numArchRegs + 2);
    sb::PhysReg stale;
    map.allocate(0, stale);
    map.allocate(1, stale);
    EXPECT_EQ(map.freeCount(), 0u);
}

// --- IssueQueue ------------------------------------------------------

TEST(IssueQueue, InsertNormalisesMissingSources)
{
    sb::IssueQueue iq(4);
    auto nop_like = makeInst(1, sb::Op::MovImm);
    nop_like->uop.dst = 1;
    iq.insert(nop_like, false, false);
    auto order = iq.inOrder();
    ASSERT_EQ(order.size(), 1u);
    EXPECT_TRUE(order[0]->src1Ready);
    EXPECT_TRUE(order[0]->src2Ready);
}

TEST(IssueQueue, WakeupSetsMatchingSources)
{
    sb::IssueQueue iq(4);
    auto inst = makeInst(1, sb::Op::Add);
    inst->uop.dst = 1;
    inst->uop.src1 = 2;
    inst->uop.src2 = 3;
    inst->psrc1 = 21;
    inst->psrc2 = 22;
    iq.insert(inst, false, false);
    iq.wakeup(21);
    auto order = iq.inOrder();
    EXPECT_TRUE(order[0]->src1Ready);
    EXPECT_FALSE(order[0]->src2Ready);
    iq.wakeup(22);
    EXPECT_TRUE(iq.inOrder()[0]->src2Ready);
}

TEST(IssueQueue, InOrderSortsBySeq)
{
    sb::IssueQueue iq(8);
    iq.insert(makeLoad(30), true, true);
    iq.insert(makeLoad(10), true, true);
    iq.insert(makeLoad(20), true, true);
    auto order = iq.inOrder();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0]->inst->seq, 10u);
    EXPECT_EQ(order[1]->inst->seq, 20u);
    EXPECT_EQ(order[2]->inst->seq, 30u);
}

TEST(IssueQueue, SquashDropsYounger)
{
    sb::IssueQueue iq(8);
    iq.insert(makeLoad(10), true, true);
    iq.insert(makeLoad(20), true, true);
    iq.insert(makeLoad(30), true, true);
    iq.squash(15);
    auto order = iq.inOrder();
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0]->inst->seq, 10u);
}

TEST(IssueQueue, FullAndRemove)
{
    sb::IssueQueue iq(2);
    auto a = makeLoad(1);
    auto b = makeLoad(2);
    iq.insert(a, true, true);
    iq.insert(b, true, true);
    EXPECT_TRUE(iq.full());
    iq.remove(a);
    EXPECT_FALSE(iq.full());
    EXPECT_EQ(iq.size(), 1u);
}

// --- LSU -------------------------------------------------------------

TEST(Lsu, ForwardFromYoungestOlderStore)
{
    sb::Lsu lsu(8, 8);
    auto st1 = makeStore(1);
    auto st2 = makeStore(2);
    auto ld = makeLoad(3);
    lsu.allocateStore(st1);
    lsu.allocateStore(st2);
    lsu.allocateLoad(ld);

    st1->effAddr = 0x1000;
    st1->effAddrValid = true;
    lsu.storeDataReady(*st1, 111);
    st2->effAddr = 0x1000;
    st2->effAddrValid = true;
    lsu.storeDataReady(*st2, 222);

    ld->effAddr = 0x1000;
    ld->effAddrValid = true;
    const auto out = lsu.checkForwarding(*ld);
    EXPECT_EQ(out.kind, sb::ForwardOutcome::Kind::Forward);
    EXPECT_EQ(out.data, 222u);
    EXPECT_EQ(out.source, 2u);
}

TEST(Lsu, StallWhenStoreDataMissing)
{
    sb::Lsu lsu(8, 8);
    auto st = makeStore(1);
    auto ld = makeLoad(2);
    lsu.allocateStore(st);
    lsu.allocateLoad(ld);
    st->effAddr = 0x1000;
    st->effAddrValid = true; // Address known, data not ready.
    ld->effAddr = 0x1000;
    ld->effAddrValid = true;
    EXPECT_EQ(lsu.checkForwarding(*ld).kind,
              sb::ForwardOutcome::Kind::StallData);
}

TEST(Lsu, BypassUnknownStoreAddressIsFlagged)
{
    sb::Lsu lsu(8, 8);
    auto st = makeStore(1);
    auto ld = makeLoad(2);
    lsu.allocateStore(st);
    lsu.allocateLoad(ld);
    ld->effAddr = 0x1000;
    ld->effAddrValid = true;
    const auto out = lsu.checkForwarding(*ld);
    EXPECT_EQ(out.kind, sb::ForwardOutcome::Kind::NoMatch);
    EXPECT_TRUE(out.bypassedUnknown);
}

TEST(Lsu, ViolationDetectedOnLateStoreAddress)
{
    sb::Lsu lsu(8, 8);
    auto st = makeStore(1);
    auto ld = makeLoad(2);
    lsu.allocateStore(st);
    lsu.allocateLoad(ld);

    // Load executes first, reading memory (bypassing the store).
    ld->effAddr = 0x1000;
    ld->effAddrValid = true;
    lsu.loadDataReturned(*ld, sb::invalidSeqNum);

    // Store address resolves later and overlaps: violation.
    st->effAddr = 0x1000;
    st->effAddrValid = true;
    const auto victim = lsu.checkViolation(*st);
    ASSERT_TRUE(victim);
    EXPECT_EQ(victim->seq, 2u);
}

TEST(Lsu, NoViolationWhenLoadForwardedFromThatStore)
{
    sb::Lsu lsu(8, 8);
    auto st = makeStore(1);
    auto ld = makeLoad(2);
    lsu.allocateStore(st);
    lsu.allocateLoad(ld);
    ld->effAddr = 0x1000;
    ld->effAddrValid = true;
    lsu.loadDataReturned(*ld, st->seq);
    st->effAddr = 0x1000;
    st->effAddrValid = true;
    EXPECT_FALSE(lsu.checkViolation(*st));
}

TEST(Lsu, NoViolationOnDisjointAddresses)
{
    sb::Lsu lsu(8, 8);
    auto st = makeStore(1);
    auto ld = makeLoad(2);
    lsu.allocateStore(st);
    lsu.allocateLoad(ld);
    ld->effAddr = 0x2000;
    ld->effAddrValid = true;
    lsu.loadDataReturned(*ld, sb::invalidSeqNum);
    st->effAddr = 0x1000;
    st->effAddrValid = true;
    EXPECT_FALSE(lsu.checkViolation(*st));
}

TEST(Lsu, DrainLifecycle)
{
    sb::Lsu lsu(8, 8);
    auto st = makeStore(1);
    lsu.allocateStore(st);
    st->effAddr = 0x1000;
    st->effAddrValid = true;
    lsu.storeDataReady(*st, 5);
    EXPECT_EQ(lsu.drainableStore(), nullptr);
    lsu.markStoreCommitted(*st);
    ASSERT_NE(lsu.drainableStore(), nullptr);
    EXPECT_EQ(lsu.drainableStore()->data, 5u);
    lsu.popDrainedStore();
    EXPECT_EQ(lsu.sqSize(), 0u);
}

TEST(Lsu, SquashDropsYoungerEntries)
{
    sb::Lsu lsu(8, 8);
    lsu.allocateStore(makeStore(1));
    lsu.allocateLoad(makeLoad(2));
    lsu.allocateStore(makeStore(3));
    lsu.allocateLoad(makeLoad(4));
    lsu.squash(2);
    EXPECT_EQ(lsu.sqSize(), 1u);
    EXPECT_EQ(lsu.lqSize(), 1u);
}

// --- ShadowTracker ---------------------------------------------------

TEST(ShadowTracker, VisibilityPointTracksOldestShadow)
{
    sb::ShadowTracker st;
    std::vector<sb::DynInstPtr> safe;

    auto br = makeInst(5, sb::Op::Beq);
    st.onRename(br);
    st.update(6, safe);
    EXPECT_EQ(st.visibilityPoint(), 5u);
    EXPECT_TRUE(st.isSpeculative(6));
    EXPECT_FALSE(st.isSpeculative(4));

    br->resolved = true;
    st.update(6, safe);
    EXPECT_EQ(st.visibilityPoint(), 6u);
}

TEST(ShadowTracker, StoresCastDShadowsUntilAddressKnown)
{
    sb::ShadowTracker st;
    std::vector<sb::DynInstPtr> safe;
    auto store = makeStore(3);
    st.onRename(store);
    st.update(10, safe);
    EXPECT_EQ(st.visibilityPoint(), 3u);
    store->effAddrValid = true;
    st.update(10, safe);
    EXPECT_EQ(st.visibilityPoint(), 10u);
}

TEST(ShadowTracker, SpeculativeLoadsReleasedInOrder)
{
    sb::ShadowTracker st;
    std::vector<sb::DynInstPtr> safe;
    auto br = makeInst(1, sb::Op::Beq);
    st.onRename(br);
    st.update(2, safe);

    auto ld1 = makeLoad(2);
    auto ld2 = makeLoad(3);
    st.onRename(ld1);
    st.onRename(ld2);
    EXPECT_TRUE(ld1->specAtRename);
    EXPECT_TRUE(ld2->specAtRename);

    br->resolved = true;
    st.update(4, safe);
    ASSERT_EQ(safe.size(), 2u);
    EXPECT_EQ(safe[0]->seq, 2u);
    EXPECT_EQ(safe[1]->seq, 3u);
}

TEST(ShadowTracker, LoadWithNoOlderShadowIsNeverSpeculative)
{
    sb::ShadowTracker st;
    std::vector<sb::DynInstPtr> safe;
    st.update(5, safe);
    auto ld = makeLoad(5);
    st.onRename(ld);
    EXPECT_FALSE(ld->specAtRename);
}

TEST(ShadowTracker, SquashedShadowsAreSkipped)
{
    sb::ShadowTracker st;
    std::vector<sb::DynInstPtr> safe;
    auto br1 = makeInst(1, sb::Op::Beq);
    auto br2 = makeInst(2, sb::Op::Beq);
    st.onRename(br1);
    st.onRename(br2);
    st.update(3, safe);
    EXPECT_EQ(st.visibilityPoint(), 1u);
    br1->resolved = true;
    br2->squashed = true;
    st.update(3, safe);
    EXPECT_EQ(st.visibilityPoint(), 3u);
}

TEST(ShadowTracker, PrevLatchLagsOneUpdate)
{
    sb::ShadowTracker st;
    std::vector<sb::DynInstPtr> safe;
    auto br = makeInst(1, sb::Op::Beq);
    st.onRename(br);
    st.latchPrev();
    st.update(2, safe);
    EXPECT_EQ(st.visibilityPointPrev(), 0u);
    br->resolved = true;
    st.latchPrev();
    st.update(5, safe);
    EXPECT_EQ(st.visibilityPointPrev(), 1u);
    EXPECT_EQ(st.visibilityPoint(), 5u);
}

// --- SecurityMonitor ---------------------------------------------------

TEST(Monitor, TransmitterWithTaintedOperandViolates)
{
    sb::SecurityMonitor mon(64);
    auto ld = makeLoad(10, 20);
    mon.onLoadData(*ld, true); // Speculative load -> preg 20 tainted.

    auto consumer = makeLoad(12, 21, 20); // Load using preg 20.
    mon.onConsume(*consumer, 5, true, false, true);
    EXPECT_EQ(mon.transmitViolations(), 1u);
    EXPECT_EQ(mon.consumeViolations(), 1u);
}

TEST(Monitor, NonTransmitterConsumptionOnlyFlagsNda)
{
    sb::SecurityMonitor mon(64);
    auto ld = makeLoad(10, 20);
    mon.onLoadData(*ld, true);
    auto alu = makeInst(12, sb::Op::Add);
    alu->uop.dst = 1;
    alu->uop.src1 = 2;
    alu->uop.src2 = 3;
    alu->pdst = 22;
    alu->psrc1 = 20;
    alu->psrc2 = 21;
    mon.onConsume(*alu, 5, true, true, false);
    EXPECT_EQ(mon.transmitViolations(), 0u);
    EXPECT_EQ(mon.consumeViolations(), 1u);
}

TEST(Monitor, TaintPropagatesTransitively)
{
    sb::SecurityMonitor mon(64);
    auto ld = makeLoad(10, 20);
    mon.onLoadData(*ld, true);
    // alu: preg 22 = f(preg 20) while root still speculative.
    auto alu = makeInst(11, sb::Op::Add);
    alu->uop.dst = 1;
    alu->uop.src1 = 2;
    alu->pdst = 22;
    alu->psrc1 = 20;
    mon.onConsume(*alu, 5, true, false, false);
    // Transmitter consuming preg 22: indirect taint.
    auto br = makeInst(12, sb::Op::Beq);
    br->uop.src1 = 2;
    br->psrc1 = 22;
    mon.onConsume(*br, 5, true, false, true);
    EXPECT_EQ(mon.transmitViolations(), 1u);
}

TEST(Monitor, RootsExpireAtVisibilityPoint)
{
    sb::SecurityMonitor mon(64);
    auto ld = makeLoad(10, 20);
    mon.onLoadData(*ld, true);
    auto br = makeInst(12, sb::Op::Beq);
    br->uop.src1 = 2;
    br->psrc1 = 20;
    // Visibility point has passed the load: data is public now.
    mon.onConsume(*br, 11, true, false, true);
    EXPECT_EQ(mon.transmitViolations(), 0u);
    EXPECT_EQ(mon.consumeViolations(), 0u);
}

TEST(Monitor, NonSpeculativeLoadProducesCleanData)
{
    sb::SecurityMonitor mon(64);
    auto ld = makeLoad(10, 20);
    mon.onLoadData(*ld, false);
    auto br = makeInst(12, sb::Op::Beq);
    br->uop.src1 = 2;
    br->psrc1 = 20;
    mon.onConsume(*br, 5, true, false, true);
    EXPECT_EQ(mon.transmitViolations(), 0u);
}

TEST(Monitor, AllocationClearsOldState)
{
    sb::SecurityMonitor mon(64);
    auto ld = makeLoad(10, 20);
    mon.onLoadData(*ld, true);
    mon.onAllocate(20); // Register reallocated to a new producer.
    auto br = makeInst(12, sb::Op::Beq);
    br->uop.src1 = 2;
    br->psrc1 = 20;
    mon.onConsume(*br, 5, true, false, true);
    EXPECT_EQ(mon.transmitViolations(), 0u);
}

} // anonymous namespace
