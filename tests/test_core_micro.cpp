/**
 * @file
 * Unit tests for the core's microarchitectural components: rename
 * map, issue queue, LSU, shadow tracker, and security monitor.
 *
 * Components address instructions through InstSlab handles, so each
 * test owns a small slab and the helpers hand back handles.
 */

#include <gtest/gtest.h>

#include "core/inst_slab.hh"
#include "core/issue_queue.hh"
#include "core/lsu.hh"
#include "core/rename_map.hh"
#include "core/security_monitor.hh"
#include "core/shadow_tracker.hh"

namespace
{

sb::InstHandle
makeInst(sb::InstSlab &slab, sb::SeqNum seq, sb::Op op)
{
    const sb::InstHandle h = slab.alloc();
    sb::DynInst &inst = slab.get(h);
    inst = sb::DynInst{};
    inst.seq = seq;
    inst.uop.op = op;
    return h;
}

sb::InstHandle
makeLoad(sb::InstSlab &slab, sb::SeqNum seq, sb::PhysReg dst = 10,
         sb::PhysReg base = 11)
{
    const sb::InstHandle h = makeInst(slab, seq, sb::Op::Load);
    sb::DynInst &inst = slab.get(h);
    inst.uop.dst = 1;
    inst.uop.src1 = 2;
    inst.pdst = dst;
    inst.psrc1 = base;
    return h;
}

sb::InstHandle
makeStore(sb::InstSlab &slab, sb::SeqNum seq, sb::PhysReg base = 12,
          sb::PhysReg data = 13)
{
    const sb::InstHandle h = makeInst(slab, seq, sb::Op::Store);
    sb::DynInst &inst = slab.get(h);
    inst.uop.src1 = 2;
    inst.uop.src2 = 3;
    inst.psrc1 = base;
    inst.psrc2 = data;
    return h;
}

// --- RenameMap -------------------------------------------------------

TEST(RenameMap, InitialIdentityMapping)
{
    sb::RenameMap map(sb::numArchRegs, 64);
    for (unsigned i = 0; i < sb::numArchRegs; ++i)
        EXPECT_EQ(map.lookup(i), i);
    EXPECT_EQ(map.freeCount(), 64u - sb::numArchRegs);
}

TEST(RenameMap, AllocateUpdatesMapping)
{
    sb::RenameMap map(sb::numArchRegs, 64);
    sb::PhysReg stale;
    const sb::PhysReg fresh = map.allocate(5, stale);
    EXPECT_EQ(stale, 5);
    EXPECT_EQ(map.lookup(5), fresh);
    EXPECT_NE(fresh, stale);
}

TEST(RenameMap, UnwindRestoresExactly)
{
    sb::RenameMap map(sb::numArchRegs, 64);
    sb::PhysReg stale1, stale2;
    const sb::PhysReg p1 = map.allocate(5, stale1);
    const sb::PhysReg p2 = map.allocate(5, stale2);
    EXPECT_EQ(stale2, p1);
    const unsigned free_before = map.freeCount();
    // Youngest-first walk-back.
    map.unwind(5, p2, stale2);
    EXPECT_EQ(map.lookup(5), p1);
    map.unwind(5, p1, stale1);
    EXPECT_EQ(map.lookup(5), 5);
    EXPECT_EQ(map.freeCount(), free_before + 2);
}

TEST(RenameMap, OutOfOrderUnwindDies)
{
    sb::RenameMap map(sb::numArchRegs, 64);
    sb::PhysReg stale1, stale2;
    const sb::PhysReg p1 = map.allocate(5, stale1);
    map.allocate(5, stale2);
    EXPECT_DEATH(map.unwind(5, p1, stale1), "unwind out of order");
}

TEST(RenameMap, ExhaustsFreeList)
{
    sb::RenameMap map(sb::numArchRegs, sb::numArchRegs + 2);
    sb::PhysReg stale;
    map.allocate(0, stale);
    map.allocate(1, stale);
    EXPECT_EQ(map.freeCount(), 0u);
}

// --- IssueQueue ------------------------------------------------------

TEST(IssueQueue, InsertNormalisesMissingSources)
{
    sb::InstSlab slab(16);
    sb::IssueQueue iq(4);
    iq.attachSlab(&slab);
    const auto h = makeInst(slab, 1, sb::Op::MovImm);
    slab.get(h).uop.dst = 1;
    iq.insert(h, slab.get(h), false, false);
    auto order = iq.inOrder();
    ASSERT_EQ(order.size(), 1u);
    EXPECT_TRUE(order[0]->src1Ready);
    EXPECT_TRUE(order[0]->src2Ready);
}

TEST(IssueQueue, WakeupSetsMatchingSources)
{
    sb::InstSlab slab(16);
    sb::IssueQueue iq(4);
    iq.attachSlab(&slab);
    const auto h = makeInst(slab, 1, sb::Op::Add);
    sb::DynInst &inst = slab.get(h);
    inst.uop.dst = 1;
    inst.uop.src1 = 2;
    inst.uop.src2 = 3;
    inst.psrc1 = 21;
    inst.psrc2 = 22;
    iq.insert(h, inst, false, false);
    iq.wakeup(21);
    auto order = iq.inOrder();
    EXPECT_TRUE(order[0]->src1Ready);
    EXPECT_FALSE(order[0]->src2Ready);
    iq.wakeup(22);
    EXPECT_TRUE(iq.inOrder()[0]->src2Ready);
}

TEST(IssueQueue, InOrderSortsBySeq)
{
    sb::InstSlab slab(16);
    sb::IssueQueue iq(8);
    iq.attachSlab(&slab);
    // Dispatch happens in program order; the age list appends.
    const auto a = makeLoad(slab, 10);
    const auto b = makeLoad(slab, 20);
    const auto c = makeLoad(slab, 30);
    iq.insert(a, slab.get(a), true, true);
    iq.insert(b, slab.get(b), true, true);
    iq.insert(c, slab.get(c), true, true);
    auto order = iq.inOrder();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0]->seq, 10u);
    EXPECT_EQ(order[1]->seq, 20u);
    EXPECT_EQ(order[2]->seq, 30u);
}

TEST(IssueQueue, SquashDropsYounger)
{
    sb::InstSlab slab(16);
    sb::IssueQueue iq(8);
    iq.attachSlab(&slab);
    const auto a = makeLoad(slab, 10);
    const auto b = makeLoad(slab, 20);
    const auto c = makeLoad(slab, 30);
    iq.insert(a, slab.get(a), true, true);
    iq.insert(b, slab.get(b), true, true);
    iq.insert(c, slab.get(c), true, true);
    // The core frees squashed records before sweeping the queue.
    slab.free(b);
    slab.free(c);
    iq.squash(15);
    auto order = iq.inOrder();
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0]->seq, 10u);
}

TEST(IssueQueue, SquashSweepsStaleHandlesOfSurvivingSeq)
{
    // A defensive property of the handle migration: even an entry
    // whose seq predates the squash point is dropped if its record
    // died (cannot happen in the core's flow, but the queue must not
    // keep a dangling handle).
    sb::InstSlab slab(16);
    sb::IssueQueue iq(8);
    iq.attachSlab(&slab);
    const auto a = makeLoad(slab, 10);
    iq.insert(a, slab.get(a), true, true);
    slab.free(a);
    iq.squash(100);
    EXPECT_EQ(iq.size(), 0u);
}

TEST(IssueQueue, FullAndRemove)
{
    sb::InstSlab slab(16);
    sb::IssueQueue iq(2);
    iq.attachSlab(&slab);
    const auto a = makeLoad(slab, 1);
    const auto b = makeLoad(slab, 2);
    iq.insert(a, slab.get(a), true, true);
    iq.insert(b, slab.get(b), true, true);
    EXPECT_TRUE(iq.full());
    iq.remove(slab.get(a));
    EXPECT_FALSE(iq.full());
    EXPECT_EQ(iq.size(), 1u);
    EXPECT_FALSE(slab.get(a).inIq);
}

// --- LSU -------------------------------------------------------------

namespace lsu_detail
{

/** Set a store's generated address and publish it to the SQ. */
void
storeAddr(sb::Lsu &lsu, sb::DynInst &st, sb::Addr addr)
{
    st.effAddr = addr;
    st.effAddrValid = true;
    lsu.storeAddrReady(st);
}

} // namespace lsu_detail

TEST(Lsu, ForwardFromYoungestOlderStore)
{
    sb::InstSlab slab(16);
    sb::Lsu lsu(8, 8);
    std::vector<sb::InstHandle> woken;
    const auto st1 = makeStore(slab, 1);
    const auto st2 = makeStore(slab, 2);
    const auto ld = makeLoad(slab, 3);
    lsu.allocateStore(st1, slab.get(st1));
    lsu.allocateStore(st2, slab.get(st2));
    lsu.allocateLoad(ld, slab.get(ld));

    lsu_detail::storeAddr(lsu, slab.get(st1), 0x1000);
    lsu.storeDataReady(slab.get(st1), 111, woken);
    lsu_detail::storeAddr(lsu, slab.get(st2), 0x1000);
    lsu.storeDataReady(slab.get(st2), 222, woken);

    slab.get(ld).effAddr = 0x1000;
    slab.get(ld).effAddrValid = true;
    const auto out = lsu.checkForwarding(slab.get(ld));
    EXPECT_EQ(out.kind, sb::ForwardOutcome::Kind::Forward);
    EXPECT_EQ(out.data, 222u);
    EXPECT_EQ(out.source, 2u);
}

TEST(Lsu, StallWhenStoreDataMissing)
{
    sb::InstSlab slab(16);
    sb::Lsu lsu(8, 8);
    const auto st = makeStore(slab, 1);
    const auto ld = makeLoad(slab, 2);
    lsu.allocateStore(st, slab.get(st));
    lsu.allocateLoad(ld, slab.get(ld));
    // Address known, data not ready.
    lsu_detail::storeAddr(lsu, slab.get(st), 0x1000);
    slab.get(ld).effAddr = 0x1000;
    slab.get(ld).effAddrValid = true;
    EXPECT_EQ(lsu.checkForwarding(slab.get(ld)).kind,
              sb::ForwardOutcome::Kind::StallData);
}

TEST(Lsu, ForwardWaitersRideTheSqEntry)
{
    sb::InstSlab slab(16);
    sb::Lsu lsu(8, 8);
    const auto st = makeStore(slab, 1);
    const auto ld = makeLoad(slab, 2);
    lsu.allocateStore(st, slab.get(st));
    lsu.allocateLoad(ld, slab.get(ld));
    lsu_detail::storeAddr(lsu, slab.get(st), 0x1000);

    slab.get(ld).effAddr = 0x1000;
    slab.get(ld).effAddrValid = true;
    const auto out = lsu.checkForwarding(slab.get(ld));
    ASSERT_EQ(out.kind, sb::ForwardOutcome::Kind::StallData);
    lsu.addForwardWaiter(out.source, ld);

    // The data half hands the waiter list back.
    std::vector<sb::InstHandle> woken;
    lsu.storeDataReady(slab.get(st), 77, woken);
    ASSERT_EQ(woken.size(), 1u);
    EXPECT_EQ(woken[0], ld);

    // A second data-ready (cannot happen in the core, but the list
    // must have been consumed) wakes nobody.
    woken.clear();
    lsu.storeDataReady(slab.get(st), 77, woken);
    EXPECT_TRUE(woken.empty());
}

TEST(Lsu, SquashedStoreTakesItsWaitersWithIt)
{
    sb::InstSlab slab(16);
    sb::Lsu lsu(8, 8);
    const auto st = makeStore(slab, 5);
    const auto ld = makeLoad(slab, 6);
    lsu.allocateStore(st, slab.get(st));
    lsu.allocateLoad(ld, slab.get(ld));
    lsu_detail::storeAddr(lsu, slab.get(st), 0x1000);
    lsu.addForwardWaiter(5, ld);
    // Squashing the store drops its SQ entry and, with it, the waiter
    // list — no separate cleanup structure to maintain.
    lsu.squash(4);
    EXPECT_EQ(lsu.sqSize(), 0u);
    EXPECT_EQ(lsu.lqSize(), 0u);
}

TEST(Lsu, BypassUnknownStoreAddressIsFlagged)
{
    sb::InstSlab slab(16);
    sb::Lsu lsu(8, 8);
    const auto st = makeStore(slab, 1);
    const auto ld = makeLoad(slab, 2);
    lsu.allocateStore(st, slab.get(st));
    lsu.allocateLoad(ld, slab.get(ld));
    slab.get(ld).effAddr = 0x1000;
    slab.get(ld).effAddrValid = true;
    const auto out = lsu.checkForwarding(slab.get(ld));
    EXPECT_EQ(out.kind, sb::ForwardOutcome::Kind::NoMatch);
    EXPECT_TRUE(out.bypassedUnknown);
}

TEST(Lsu, ViolationDetectedOnLateStoreAddress)
{
    sb::InstSlab slab(16);
    sb::Lsu lsu(8, 8);
    const auto st = makeStore(slab, 1);
    const auto ld = makeLoad(slab, 2);
    lsu.allocateStore(st, slab.get(st));
    lsu.allocateLoad(ld, slab.get(ld));

    // Load executes first, reading memory (bypassing the store).
    slab.get(ld).effAddr = 0x1000;
    slab.get(ld).effAddrValid = true;
    lsu.loadDataReturned(slab.get(ld), sb::invalidSeqNum);

    // Store address resolves later and overlaps: violation.
    slab.get(st).effAddr = 0x1000;
    slab.get(st).effAddrValid = true;
    lsu.storeAddrReady(slab.get(st));
    const sb::LqEntry *victim = lsu.checkViolation(slab.get(st));
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->seq, 2u);
    EXPECT_EQ(victim->handle, ld);
}

TEST(Lsu, NoViolationWhenLoadForwardedFromThatStore)
{
    sb::InstSlab slab(16);
    sb::Lsu lsu(8, 8);
    const auto st = makeStore(slab, 1);
    const auto ld = makeLoad(slab, 2);
    lsu.allocateStore(st, slab.get(st));
    lsu.allocateLoad(ld, slab.get(ld));
    slab.get(ld).effAddr = 0x1000;
    slab.get(ld).effAddrValid = true;
    lsu.loadDataReturned(slab.get(ld), slab.get(st).seq);
    slab.get(st).effAddr = 0x1000;
    slab.get(st).effAddrValid = true;
    lsu.storeAddrReady(slab.get(st));
    EXPECT_EQ(lsu.checkViolation(slab.get(st)), nullptr);
}

TEST(Lsu, NoViolationOnDisjointAddresses)
{
    sb::InstSlab slab(16);
    sb::Lsu lsu(8, 8);
    const auto st = makeStore(slab, 1);
    const auto ld = makeLoad(slab, 2);
    lsu.allocateStore(st, slab.get(st));
    lsu.allocateLoad(ld, slab.get(ld));
    slab.get(ld).effAddr = 0x2000;
    slab.get(ld).effAddrValid = true;
    lsu.loadDataReturned(slab.get(ld), sb::invalidSeqNum);
    slab.get(st).effAddr = 0x1000;
    slab.get(st).effAddrValid = true;
    lsu.storeAddrReady(slab.get(st));
    EXPECT_EQ(lsu.checkViolation(slab.get(st)), nullptr);
}

TEST(Lsu, DrainLifecycle)
{
    sb::InstSlab slab(16);
    sb::Lsu lsu(8, 8);
    std::vector<sb::InstHandle> woken;
    const auto st = makeStore(slab, 1);
    lsu.allocateStore(st, slab.get(st));
    lsu_detail::storeAddr(lsu, slab.get(st), 0x1000);
    lsu.storeDataReady(slab.get(st), 5, woken);
    EXPECT_EQ(lsu.drainableStore(), nullptr);
    lsu.markStoreCommitted(slab.get(st));
    // The drain works from the entry's cached fields alone — the
    // record can be gone, as it is after a real commit.
    slab.free(st);
    ASSERT_NE(lsu.drainableStore(), nullptr);
    EXPECT_EQ(lsu.drainableStore()->data, 5u);
    EXPECT_EQ(lsu.drainableStore()->addr, 0x1000u);
    lsu.popDrainedStore();
    EXPECT_EQ(lsu.sqSize(), 0u);
}

TEST(Lsu, SquashDropsYoungerEntries)
{
    sb::InstSlab slab(16);
    sb::Lsu lsu(8, 8);
    const auto s1 = makeStore(slab, 1);
    const auto l2 = makeLoad(slab, 2);
    const auto s3 = makeStore(slab, 3);
    const auto l4 = makeLoad(slab, 4);
    lsu.allocateStore(s1, slab.get(s1));
    lsu.allocateLoad(l2, slab.get(l2));
    lsu.allocateStore(s3, slab.get(s3));
    lsu.allocateLoad(l4, slab.get(l4));
    lsu.squash(2);
    EXPECT_EQ(lsu.sqSize(), 1u);
    EXPECT_EQ(lsu.lqSize(), 1u);
}

// --- ShadowTracker ---------------------------------------------------

TEST(ShadowTracker, VisibilityPointTracksOldestShadow)
{
    sb::InstSlab slab(16);
    sb::ShadowTracker st;
    st.attachSlab(&slab);
    std::vector<sb::InstHandle> safe;

    const auto br = makeInst(slab, 5, sb::Op::Beq);
    st.onRename(br, slab.get(br));
    st.update(6, safe);
    EXPECT_EQ(st.visibilityPoint(), 5u);
    EXPECT_TRUE(st.isSpeculative(6));
    EXPECT_FALSE(st.isSpeculative(4));

    slab.get(br).resolved = true;
    st.update(6, safe);
    EXPECT_EQ(st.visibilityPoint(), 6u);
}

TEST(ShadowTracker, StoresCastDShadowsUntilAddressKnown)
{
    sb::InstSlab slab(16);
    sb::ShadowTracker st;
    st.attachSlab(&slab);
    std::vector<sb::InstHandle> safe;
    const auto store = makeStore(slab, 3);
    st.onRename(store, slab.get(store));
    st.update(10, safe);
    EXPECT_EQ(st.visibilityPoint(), 3u);
    slab.get(store).effAddrValid = true;
    st.update(10, safe);
    EXPECT_EQ(st.visibilityPoint(), 10u);
}

TEST(ShadowTracker, SpeculativeLoadsReleasedInOrder)
{
    sb::InstSlab slab(16);
    sb::ShadowTracker st;
    st.attachSlab(&slab);
    std::vector<sb::InstHandle> safe;
    const auto br = makeInst(slab, 1, sb::Op::Beq);
    st.onRename(br, slab.get(br));
    st.update(2, safe);

    const auto ld1 = makeLoad(slab, 2);
    const auto ld2 = makeLoad(slab, 3);
    st.onRename(ld1, slab.get(ld1));
    st.onRename(ld2, slab.get(ld2));
    EXPECT_TRUE(slab.get(ld1).specAtRename);
    EXPECT_TRUE(slab.get(ld2).specAtRename);

    slab.get(br).resolved = true;
    st.update(4, safe);
    ASSERT_EQ(safe.size(), 2u);
    EXPECT_EQ(safe[0], ld1);
    EXPECT_EQ(safe[1], ld2);
}

TEST(ShadowTracker, LoadWithNoOlderShadowIsNeverSpeculative)
{
    sb::InstSlab slab(16);
    sb::ShadowTracker st;
    st.attachSlab(&slab);
    std::vector<sb::InstHandle> safe;
    st.update(5, safe);
    const auto ld = makeLoad(slab, 5);
    st.onRename(ld, slab.get(ld));
    EXPECT_FALSE(slab.get(ld).specAtRename);
}

TEST(ShadowTracker, SquashedShadowsAreSkipped)
{
    sb::InstSlab slab(16);
    sb::ShadowTracker st;
    st.attachSlab(&slab);
    std::vector<sb::InstHandle> safe;
    const auto br1 = makeInst(slab, 1, sb::Op::Beq);
    const auto br2 = makeInst(slab, 2, sb::Op::Beq);
    st.onRename(br1, slab.get(br1));
    st.onRename(br2, slab.get(br2));
    st.update(3, safe);
    EXPECT_EQ(st.visibilityPoint(), 1u);
    slab.get(br1).resolved = true;
    // A squash frees the record; the stale handle marks the shadow.
    slab.free(br2);
    st.update(3, safe);
    EXPECT_EQ(st.visibilityPoint(), 3u);
}

TEST(ShadowTracker, SquashedSpeculativeLoadIsNotReleased)
{
    sb::InstSlab slab(16);
    sb::ShadowTracker st;
    st.attachSlab(&slab);
    std::vector<sb::InstHandle> safe;
    const auto br = makeInst(slab, 1, sb::Op::Beq);
    st.onRename(br, slab.get(br));
    st.update(2, safe);
    const auto ld = makeLoad(slab, 2);
    st.onRename(ld, slab.get(ld));
    slab.free(ld); // Squashed.
    slab.get(br).resolved = true;
    st.update(3, safe);
    EXPECT_TRUE(safe.empty());
    EXPECT_EQ(st.visibilityPoint(), 3u);
}

TEST(ShadowTracker, PrevLatchLagsOneUpdate)
{
    sb::InstSlab slab(16);
    sb::ShadowTracker st;
    st.attachSlab(&slab);
    std::vector<sb::InstHandle> safe;
    const auto br = makeInst(slab, 1, sb::Op::Beq);
    st.onRename(br, slab.get(br));
    st.latchPrev();
    st.update(2, safe);
    EXPECT_EQ(st.visibilityPointPrev(), 0u);
    slab.get(br).resolved = true;
    st.latchPrev();
    st.update(5, safe);
    EXPECT_EQ(st.visibilityPointPrev(), 1u);
    EXPECT_EQ(st.visibilityPoint(), 5u);
}

// --- SecurityMonitor ---------------------------------------------------

TEST(Monitor, TransmitterWithTaintedOperandViolates)
{
    sb::InstSlab slab(16);
    sb::SecurityMonitor mon(64);
    const auto ld = makeLoad(slab, 10, 20);
    mon.onLoadData(slab.get(ld), true); // Spec load -> preg 20 tainted.

    const auto consumer = makeLoad(slab, 12, 21, 20); // Uses preg 20.
    mon.onConsume(slab.get(consumer), 5, true, false, true);
    EXPECT_EQ(mon.transmitViolations(), 1u);
    EXPECT_EQ(mon.consumeViolations(), 1u);
}

TEST(Monitor, NonTransmitterConsumptionOnlyFlagsNda)
{
    sb::InstSlab slab(16);
    sb::SecurityMonitor mon(64);
    const auto ld = makeLoad(slab, 10, 20);
    mon.onLoadData(slab.get(ld), true);
    const auto alu = makeInst(slab, 12, sb::Op::Add);
    sb::DynInst &a = slab.get(alu);
    a.uop.dst = 1;
    a.uop.src1 = 2;
    a.uop.src2 = 3;
    a.pdst = 22;
    a.psrc1 = 20;
    a.psrc2 = 21;
    mon.onConsume(a, 5, true, true, false);
    EXPECT_EQ(mon.transmitViolations(), 0u);
    EXPECT_EQ(mon.consumeViolations(), 1u);
}

TEST(Monitor, TaintPropagatesTransitively)
{
    sb::InstSlab slab(16);
    sb::SecurityMonitor mon(64);
    const auto ld = makeLoad(slab, 10, 20);
    mon.onLoadData(slab.get(ld), true);
    // alu: preg 22 = f(preg 20) while root still speculative.
    const auto alu = makeInst(slab, 11, sb::Op::Add);
    sb::DynInst &a = slab.get(alu);
    a.uop.dst = 1;
    a.uop.src1 = 2;
    a.pdst = 22;
    a.psrc1 = 20;
    mon.onConsume(a, 5, true, false, false);
    // Transmitter consuming preg 22: indirect taint.
    const auto br = makeInst(slab, 12, sb::Op::Beq);
    sb::DynInst &b = slab.get(br);
    b.uop.src1 = 2;
    b.psrc1 = 22;
    mon.onConsume(b, 5, true, false, true);
    EXPECT_EQ(mon.transmitViolations(), 1u);
}

TEST(Monitor, RootsExpireAtVisibilityPoint)
{
    sb::InstSlab slab(16);
    sb::SecurityMonitor mon(64);
    const auto ld = makeLoad(slab, 10, 20);
    mon.onLoadData(slab.get(ld), true);
    const auto br = makeInst(slab, 12, sb::Op::Beq);
    sb::DynInst &b = slab.get(br);
    b.uop.src1 = 2;
    b.psrc1 = 20;
    // Visibility point has passed the load: data is public now.
    mon.onConsume(b, 11, true, false, true);
    EXPECT_EQ(mon.transmitViolations(), 0u);
    EXPECT_EQ(mon.consumeViolations(), 0u);
}

TEST(Monitor, NonSpeculativeLoadProducesCleanData)
{
    sb::InstSlab slab(16);
    sb::SecurityMonitor mon(64);
    const auto ld = makeLoad(slab, 10, 20);
    mon.onLoadData(slab.get(ld), false);
    const auto br = makeInst(slab, 12, sb::Op::Beq);
    sb::DynInst &b = slab.get(br);
    b.uop.src1 = 2;
    b.psrc1 = 20;
    mon.onConsume(b, 5, true, false, true);
    EXPECT_EQ(mon.transmitViolations(), 0u);
}

TEST(Monitor, AllocationClearsOldState)
{
    sb::InstSlab slab(16);
    sb::SecurityMonitor mon(64);
    const auto ld = makeLoad(slab, 10, 20);
    mon.onLoadData(slab.get(ld), true);
    mon.onAllocate(20); // Register reallocated to a new producer.
    const auto br = makeInst(slab, 12, sb::Op::Beq);
    sb::DynInst &b = slab.get(br);
    b.uop.src1 = 2;
    b.psrc1 = 20;
    mon.onConsume(b, 5, true, false, true);
    EXPECT_EQ(mon.transmitViolations(), 0u);
}

} // anonymous namespace
